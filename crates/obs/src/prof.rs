//! Slow-path phase timers: where does revocation time actually go?
//!
//! The revocation slow path is a pipeline of distinct phases — inflate
//! the lock, signal the victim, walk the undo log, restore the saved
//! state, hand the monitor to the next waiter, deflate — and a latency
//! regression in the round-trip number says nothing about *which* phase
//! ate the time. [`PhaseTimers`] gives each [`Phase`] its own HDR
//! [`Histogram`] so both runtimes can attribute slow-path nanoseconds
//! phase-by-phase, cheaply enough to leave on in production:
//!
//! * recording is the histogram's wait-free path (a few relaxed atomic
//!   adds) plus one `Instant` pair per phase — and only on the *slow*
//!   path; the thin-lock fast paths never touch this module;
//! * when disabled, an instrumentation site costs one relaxed atomic
//!   load ([`PhaseTimers::enabled`]) and a branch;
//! * the process-global [`timers()`] instance is **on by default** —
//!   the CI self-overhead gate (`hotpath --overhead`) holds the
//!   enabled/disabled delta on the fast-path benches under 10%.
//!
//! Both runtimes record **wall-clock nanoseconds** here, including the
//! deterministic VM: phase timers measure the *host's* cost of running
//! the revocation machinery (the quantity the hot-path benches track),
//! not the simulated virtual-tick cost, which already flows through the
//! event stream's `Rollback { duration }`.

use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::hist::Histogram;

/// One phase of the revocation slow path. The set is shared by both
/// runtimes; a runtime that has no work for a phase simply never
/// records it (e.g. the VM's monitors have no thin/fat word, so
/// `Inflate`/`Deflate` stay empty there).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Thin→fat lock-word transition (locks runtime).
    Inflate,
    /// Detecting the inversion and flagging/unparking the victim.
    SignalVictim,
    /// Walking the undo log newest-first and restoring old values.
    UndoWalk,
    /// Reinstating saved control state (locals, stack, resume pc) so
    /// the section re-executes from its entry.
    Restore,
    /// Releasing the victim's monitors and granting the next waiter.
    Requeue,
    /// Fat→thin lock-word transition after the queues drain.
    Deflate,
}

impl Phase {
    /// Every phase, in slow-path order.
    pub const ALL: [Phase; 6] = [
        Phase::Inflate,
        Phase::SignalVictim,
        Phase::UndoWalk,
        Phase::Restore,
        Phase::Requeue,
        Phase::Deflate,
    ];

    /// Stable lowercase name (used in reports, JSON, folded stacks and
    /// Prometheus labels).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Inflate => "inflate",
            Phase::SignalVictim => "signal-victim",
            Phase::UndoWalk => "undo-walk",
            Phase::Restore => "restore",
            Phase::Requeue => "requeue",
            Phase::Deflate => "deflate",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Inflate => 0,
            Phase::SignalVictim => 1,
            Phase::UndoWalk => 2,
            Phase::Restore => 3,
            Phase::Requeue => 4,
            Phase::Deflate => 5,
        }
    }
}

/// Per-phase latency histograms with a global on/off switch.
///
/// All storage is inline and fixed-size; recording never allocates and
/// never blocks. See the module docs for the cost model.
pub struct PhaseTimers {
    enabled: AtomicBool,
    hists: [Histogram; 6],
}

impl Default for PhaseTimers {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseTimers {
    /// Fresh, **enabled** timer set (profiling is designed to be always
    /// on; disable explicitly to measure its own overhead).
    pub fn new() -> Self {
        PhaseTimers {
            enabled: AtomicBool::new(true),
            hists: [
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
            ],
        }
    }

    /// Whether recording is on. One relaxed load — the whole cost of a
    /// disabled instrumentation site.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on or off (the self-overhead bench toggles this).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Record `ns` nanoseconds spent in `phase`. No-op while disabled.
    #[inline]
    pub fn record(&self, phase: Phase, ns: u64) {
        if self.enabled() {
            self.hists[phase.index()].record(ns);
        }
    }

    /// Start a span for `phase`: returns the start instant when
    /// recording is enabled, `None` (zero further cost) otherwise.
    /// Close it with [`finish`](Self::finish).
    #[inline]
    pub fn start(&self, phase: Phase) -> Option<Instant> {
        let _ = phase;
        self.enabled().then(Instant::now)
    }

    /// Close a span opened by [`start`](Self::start).
    #[inline]
    pub fn finish(&self, phase: Phase, started: Option<Instant>) {
        if let Some(t0) = started {
            self.hists[phase.index()].record(t0.elapsed().as_nanos() as u64);
        }
    }

    /// The histogram behind `phase` (export/analysis access).
    pub fn hist(&self, phase: Phase) -> &Histogram {
        &self.hists[phase.index()]
    }

    /// Total recordings across all phases.
    pub fn total_count(&self) -> u64 {
        Phase::ALL.iter().map(|&p| self.hist(p).count()).sum()
    }

    /// Write the per-phase latency table (the `--stats` rendering).
    /// Phases that never fired are listed with a zero count so the
    /// table shape is stable across runs.
    pub fn write_table<W: Write>(&self, w: &mut W) -> io::Result<()> {
        writeln!(
            w,
            "{:<16} {:>8} {:>10} {:>10} {:>10} {:>10} {:>12}",
            "phase (ns)", "count", "mean", "p50", "p90", "p99", "max"
        )?;
        for &p in &Phase::ALL {
            let h = self.hist(p);
            writeln!(
                w,
                "{:<16} {:>8} {:>10.1} {:>10} {:>10} {:>10} {:>12}",
                p.name(),
                h.count(),
                h.mean(),
                h.percentile(50.0),
                h.percentile(90.0),
                h.percentile(99.0),
                h.max(),
            )?;
        }
        Ok(())
    }

    /// The per-phase stats as one JSON object (embedded in metrics-JSON
    /// under `"revocation_phases_ns"`).
    pub fn json(&self) -> String {
        let mut out = String::from("{");
        let fields: Vec<String> = Phase::ALL
            .iter()
            .map(|&p| {
                let h = self.hist(p);
                format!(
                    "\"{}\": {{\"count\": {}, \"mean\": {:.1}, \"p50\": {}, \"p90\": {}, \
                     \"p99\": {}, \"max\": {}}}",
                    p.name(),
                    h.count(),
                    h.mean(),
                    h.percentile(50.0),
                    h.percentile(90.0),
                    h.percentile(99.0),
                    h.max(),
                )
            })
            .collect();
        out.push_str(&fields.join(", "));
        out.push('}');
        out
    }

    /// Write the per-phase stats in Prometheus text exposition format
    /// (`revmon_revocation_phase_ns{phase=…,quantile=…}` summaries).
    pub fn write_prometheus<W: Write>(&self, w: &mut W) -> io::Result<()> {
        writeln!(w, "# HELP revmon_revocation_phase_ns Revocation slow-path phase latency.")?;
        writeln!(w, "# TYPE revmon_revocation_phase_ns summary")?;
        for &p in &Phase::ALL {
            let h = self.hist(p);
            for (q, pct) in [("0.5", 50.0), ("0.9", 90.0), ("0.99", 99.0)] {
                writeln!(
                    w,
                    "revmon_revocation_phase_ns{{phase=\"{}\",quantile=\"{q}\"}} {}",
                    p.name(),
                    h.percentile(pct)
                )?;
            }
            writeln!(
                w,
                "revmon_revocation_phase_ns_sum{{phase=\"{}\"}} {}",
                p.name(),
                (h.mean() * h.count() as f64).round() as u64
            )?;
            writeln!(
                w,
                "revmon_revocation_phase_ns_count{{phase=\"{}\"}} {}",
                p.name(),
                h.count()
            )?;
        }
        Ok(())
    }
}

/// The process-global phase-timer set both runtimes record into.
/// Created enabled on first use.
pub fn timers() -> &'static PhaseTimers {
    static TIMERS: OnceLock<PhaseTimers> = OnceLock::new();
    TIMERS.get_or_init(PhaseTimers::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_record_independently() {
        let t = PhaseTimers::new();
        t.record(Phase::UndoWalk, 100);
        t.record(Phase::UndoWalk, 300);
        t.record(Phase::Requeue, 7);
        assert_eq!(t.hist(Phase::UndoWalk).count(), 2);
        assert_eq!(t.hist(Phase::Requeue).count(), 1);
        assert_eq!(t.hist(Phase::Inflate).count(), 0);
        assert_eq!(t.total_count(), 3);
    }

    #[test]
    fn disabled_timers_drop_records() {
        let t = PhaseTimers::new();
        t.set_enabled(false);
        assert!(!t.enabled());
        t.record(Phase::Restore, 50);
        assert!(t.start(Phase::Restore).is_none());
        t.finish(Phase::Restore, None);
        assert_eq!(t.total_count(), 0);
        t.set_enabled(true);
        t.record(Phase::Restore, 50);
        assert_eq!(t.total_count(), 1);
    }

    #[test]
    fn start_finish_records_elapsed() {
        let t = PhaseTimers::new();
        let span = t.start(Phase::SignalVictim);
        assert!(span.is_some());
        t.finish(Phase::SignalVictim, span);
        assert_eq!(t.hist(Phase::SignalVictim).count(), 1);
    }

    #[test]
    fn table_lists_every_phase() {
        let t = PhaseTimers::new();
        t.record(Phase::UndoWalk, 1000);
        let mut buf = Vec::new();
        t.write_table(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        for &p in &Phase::ALL {
            assert!(text.contains(p.name()), "missing {} in:\n{text}", p.name());
        }
    }

    #[test]
    fn json_and_prometheus_are_well_formed() {
        let t = PhaseTimers::new();
        t.record(Phase::Inflate, 42);
        let json = t.json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"inflate\": {\"count\": 1"));

        let mut buf = Vec::new();
        t.write_prometheus(&mut buf).unwrap();
        let prom = String::from_utf8(buf).unwrap();
        assert!(prom.contains("revmon_revocation_phase_ns{phase=\"inflate\",quantile=\"0.5\"} 42"));
        assert!(prom.contains("revmon_revocation_phase_ns_count{phase=\"inflate\"} 1"));
        for line in prom.lines().filter(|l| !l.starts_with('#')) {
            let value = line.rsplit(' ').next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad sample line: {line}");
        }
    }
}
