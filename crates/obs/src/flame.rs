//! Contention flamegraphs: folded-stack export in the brendangregg
//! `flamegraph.pl` format.
//!
//! Each reconstructed inversion episode contributes its critical-path
//! segments as synthetic stacks `monitor;resolution;phase weight`, so a
//! run with a million monitors renders as a flamegraph where the hot
//! monitors — and *which phase* of their episodes dominates — jump out
//! visually. Feed the output straight to `flamegraph.pl` or
//! `inferno-flamegraph`:
//!
//! ```text
//! revmon run programs/priority_inversion.rvm --flame out.folded
//! flamegraph.pl out.folded > contention.svg
//! ```
//!
//! The representation is a `BTreeMap` keyed by the joined frame string,
//! so [`FoldedStacks::write_folded`] is deterministic and
//! `parse → re-emit` is byte-stable (the round-trip regression test
//! relies on this).

use std::collections::BTreeMap;
use std::io::{self, Write};

use crate::episode::Episode;

/// Replace the two characters the folded format reserves — `;` (frame
/// separator) and the space before the weight — so arbitrary monitor
/// names survive a round trip.
fn frame(s: &str) -> String {
    s.chars().map(|c| if c == ';' || c.is_whitespace() { '_' } else { c }).collect()
}

/// An accumulating set of folded stacks (frame-joined key → weight).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FoldedStacks {
    stacks: BTreeMap<String, u64>,
}

impl FoldedStacks {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct stacks.
    pub fn len(&self) -> usize {
        self.stacks.len()
    }

    /// Whether no stack has been added.
    pub fn is_empty(&self) -> bool {
        self.stacks.is_empty()
    }

    /// Add `weight` under the stack `frames` (root first). Zero weights
    /// are dropped — the folded format has no use for empty samples.
    pub fn add(&mut self, frames: &[&str], weight: u64) {
        if weight == 0 || frames.is_empty() {
            return;
        }
        let key = frames.iter().map(|f| frame(f)).collect::<Vec<_>>().join(";");
        *self.stacks.entry(key).or_insert(0) += weight;
    }

    /// Build contention stacks from reconstructed episodes:
    /// `monitor → resolution → critical-path phase`, weighted by the
    /// clock units each phase consumed. Unresolved episodes (no end
    /// timestamp) weight their `blocked-wait` frame by wasted section
    /// time instead, floored at 1 so they stay visible.
    pub fn from_episodes(episodes: &[Episode], names: &BTreeMap<u64, String>) -> Self {
        let mut out = Self::new();
        for e in episodes {
            let monitor = match names.get(&e.monitor) {
                Some(n) => n.clone(),
                None => format!("monitor#{}", e.monitor),
            };
            let resolution = e.resolution.name();
            match e.critical_path() {
                Some(cp) => {
                    for (phase, weight) in cp.segments() {
                        out.add(&[&monitor, resolution, phase], weight);
                    }
                }
                None => out.add(&[&monitor, resolution, "blocked-wait"], e.wasted_time.max(1)),
            }
        }
        out
    }

    /// Write in folded format: `frame;frame;frame weight`, one stack per
    /// line, sorted (deterministic and byte-stable).
    pub fn write_folded<W: Write>(&self, w: &mut W) -> io::Result<()> {
        for (stack, weight) in &self.stacks {
            writeln!(w, "{stack} {weight}")?;
        }
        Ok(())
    }

    /// The folded output as a `String`.
    pub fn folded(&self) -> String {
        let mut buf = Vec::new();
        self.write_folded(&mut buf).expect("Vec<u8> writes are infallible");
        String::from_utf8(buf).expect("folded output is UTF-8")
    }

    /// Parse folded text back into stacks. Tolerant like the trace
    /// importer: lines without a trailing integer weight are skipped;
    /// duplicate stacks accumulate.
    pub fn parse_folded(text: &str) -> Self {
        let mut out = Self::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Some((stack, weight)) = line.rsplit_once(' ') else { continue };
            let Ok(weight) = weight.parse::<u64>() else { continue };
            if weight == 0 || stack.is_empty() {
                continue;
            }
            *out.stacks.entry(stack.to_string()).or_insert(0) += weight;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::episode::reconstruct_episodes;
    use crate::event::{Event, EventKind};

    #[test]
    fn add_and_fold_deterministically() {
        let mut a = FoldedStacks::new();
        a.add(&["lock", "revocation", "undo-walk"], 6);
        a.add(&["lock", "revocation", "blocked-wait"], 2);
        a.add(&["lock", "revocation", "undo-walk"], 4); // accumulates
        a.add(&["lock", "revocation", "restore"], 0); // dropped
        let mut b = FoldedStacks::new();
        b.add(&["lock", "revocation", "blocked-wait"], 2);
        b.add(&["lock", "revocation", "undo-walk"], 10);
        assert_eq!(a.folded(), b.folded(), "insertion order leaked");
        assert_eq!(a.folded(), "lock;revocation;blocked-wait 2\nlock;revocation;undo-walk 10\n");
    }

    #[test]
    fn reserved_characters_are_sanitized() {
        let mut f = FoldedStacks::new();
        f.add(&["my lock;2", "revocation", "signal"], 1);
        assert_eq!(f.folded(), "my_lock_2;revocation;signal 1\n");
    }

    #[test]
    fn parse_reemit_is_byte_stable() {
        let mut f = FoldedStacks::new();
        f.add(&["lock", "revocation", "undo-walk"], 6);
        f.add(&["lock", "natural_release", "blocked-wait"], 31);
        f.add(&["monitor#9", "deadlock_break", "handoff"], 2);
        let once = f.folded();
        let twice = FoldedStacks::parse_folded(&once).folded();
        assert_eq!(once, twice);
        // And junk lines don't poison a parse.
        let with_junk = format!("not a folded line\n{once}trailing;stack notanumber\n");
        assert_eq!(FoldedStacks::parse_folded(&with_junk).folded(), once);
    }

    #[test]
    fn episodes_fold_by_monitor_resolution_phase() {
        let ev = |ts, thread, monitor, kind| Event { ts, thread, monitor, kind };
        let eps = reconstruct_episodes(&[
            ev(10, 1, 7, EventKind::Acquire),
            ev(20, 2, 7, EventKind::Block),
            ev(22, 1, 7, EventKind::RevokeRequest { by: 2 }),
            ev(30, 1, 7, EventKind::Rollback { entries: 4, duration: 6 }),
            ev(31, 2, 7, EventKind::Acquire),
        ]);
        let names = [(7u64, "queue".to_string())].into_iter().collect();
        let f = FoldedStacks::from_episodes(&eps, &names);
        let text = f.folded();
        assert!(text.contains("queue;revocation;blocked-wait 2\n"), "got:\n{text}");
        assert!(text.contains("queue;revocation;signal 2\n"), "got:\n{text}");
        assert!(text.contains("queue;revocation;undo-walk 6\n"), "got:\n{text}");
        assert!(text.contains("queue;revocation;handoff 1\n"), "got:\n{text}");
        // Total weight equals the episode's inversion latency.
        let total: u64 =
            text.lines().map(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap()).sum();
        assert_eq!(total, eps[0].latency().unwrap());
    }
}
