//! JSONL trace importer — the inverse of [`crate::export::write_trace_jsonl`].
//!
//! Traces come back from disk, from other machines, or from pipelines
//! that truncated or interleaved them, so the parser is deliberately
//! *lossy-stream tolerant*: a malformed line, an unknown event kind, or
//! a timestamp that runs backwards is skipped and **counted**, never a
//! panic and never a hard error. A clean export re-imports losslessly;
//! a damaged one imports whatever survives plus an honest damage report.
//!
//! The importer understands two line shapes:
//!
//! * **meta lines** — `{"meta":"trace","ts_unit":"ticks","version":1}`
//!   (stream header) and `{"meta":"monitor_name","monitor":3,"name":"queue"}`
//!   (monitor-naming table entries);
//! * **event lines** — the flat objects [`crate::write_events_jsonl`]
//!   emits, one [`Event`] each.
//!
//! JSON is parsed by hand (flat objects, numeric/string/null values
//! only) to match the hand-rolled exporters — the build environment has
//! no serde.

use std::collections::BTreeMap;

use crate::event::{Event, EventKind};
use crate::export::RunMeta;
use crate::sink::TsUnit;

/// Damage counters accumulated while importing a trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ImportWarnings {
    /// Lines that were not parsable flat JSON objects or were missing
    /// required fields (includes truncated trailing lines).
    pub malformed_lines: u64,
    /// Event lines whose `kind` this version does not know.
    pub unknown_kinds: u64,
    /// Event lines whose timestamp ran backwards relative to the last
    /// accepted event (ring-buffer shear or interleaved writers).
    pub out_of_order: u64,
}

impl ImportWarnings {
    /// Total skipped lines.
    pub fn total(&self) -> u64 {
        self.malformed_lines + self.unknown_kinds + self.out_of_order
    }
}

/// A parsed trace: the surviving events in order, the monitor-name
/// table, the declared clock domain, and the damage report.
#[derive(Debug, Default)]
pub struct TraceImport {
    /// Events that parsed cleanly, in stream order.
    pub events: Vec<Event>,
    /// Monitor id → human name, from `monitor_name` meta lines.
    pub names: BTreeMap<u64, String>,
    /// Clock domain from the stream header, if one was present.
    pub ts_unit: Option<TsUnit>,
    /// Run context from the stream header (drop accounting, governor
    /// config, scheduler). All fields `None` for traces written before
    /// the header carried them.
    pub run_meta: RunMeta,
    /// What was skipped.
    pub warnings: ImportWarnings,
    /// `(thread, monitor)` pairs whose events landed on skipped
    /// (torn/out-of-order) lines. Episodes touching these pairs cannot
    /// be classified honestly — their Acquire/Release may be among the
    /// drops — so analysis reclassifies them as *truncated* rather than
    /// letting them bias the `unresolved` count.
    pub damaged: std::collections::BTreeSet<(u64, u64)>,
}

impl TraceImport {
    /// The clock domain, defaulting to virtual ticks for headerless
    /// streams (the deterministic-VM format predates the header).
    pub fn unit(&self) -> TsUnit {
        self.ts_unit.unwrap_or(TsUnit::VirtualTicks)
    }
}

/// One flat JSON value the trace format uses.
#[derive(Clone, Debug, PartialEq)]
enum JVal {
    Num(u64),
    Str(String),
    Null,
}

impl JVal {
    fn as_num(&self) -> Option<u64> {
        match self {
            JVal::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            JVal::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse one `{"key":value,...}` line of flat JSON (numbers, strings,
/// `null`). Returns `None` on any syntax error, including truncation.
fn parse_flat_object(line: &str) -> Option<Vec<(String, JVal)>> {
    let mut chars = line.trim().chars().peekable();
    let mut out = Vec::new();
    if chars.next()? != '{' {
        return None;
    }
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
        return finishing(chars).then_some(out);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next()? != ':' {
            return None;
        }
        skip_ws(&mut chars);
        let val = match chars.peek()? {
            '"' => JVal::Str(parse_string(&mut chars)?),
            'n' => {
                for expect in "null".chars() {
                    if chars.next()? != expect {
                        return None;
                    }
                }
                JVal::Null
            }
            c if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                while let Some(d) = chars.peek().and_then(|c| c.to_digit(10)) {
                    n = n.checked_mul(10)?.checked_add(d as u64)?;
                    chars.next();
                }
                JVal::Num(n)
            }
            _ => return None,
        };
        out.push((key, val));
        skip_ws(&mut chars);
        match chars.next()? {
            ',' => continue,
            '}' => return finishing(chars).then_some(out),
            _ => return None,
        }
    }
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_whitespace()) {
        chars.next();
    }
}

/// After the closing `}`: only whitespace may remain.
fn finishing(chars: std::iter::Peekable<std::str::Chars<'_>>) -> bool {
    chars.clone().all(char::is_whitespace)
}

/// Parse a JSON string literal (cursor on the opening quote).
fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut s = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(s),
            '\\' => match chars.next()? {
                '"' => s.push('"'),
                '\\' => s.push('\\'),
                'n' => s.push('\n'),
                'r' => s.push('\r'),
                't' => s.push('\t'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.to_digit(16)?;
                    }
                    s.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => s.push(c),
        }
    }
}

fn field<'a>(obj: &'a [(String, JVal)], key: &str) -> Option<&'a JVal> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// What one parsed line meant.
enum Line {
    Event(Event),
    TraceMeta(Option<TsUnit>, RunMeta),
    NameMeta(u64, String),
    UnknownMeta,
    UnknownKind,
}

fn classify(obj: &[(String, JVal)]) -> Option<Line> {
    if let Some(meta) = field(obj, "meta") {
        let num = |key: &str| field(obj, key).and_then(JVal::as_num);
        return Some(match meta.as_str()? {
            "trace" => Line::TraceMeta(
                match field(obj, "ts_unit").and_then(JVal::as_str) {
                    Some("ticks") => Some(TsUnit::VirtualTicks),
                    Some("ns") => Some(TsUnit::WallNanos),
                    _ => None,
                },
                RunMeta {
                    recorded: num("recorded"),
                    dropped: num("dropped"),
                    governor: match (
                        num("governor_k"),
                        num("governor_backoff"),
                        num("governor_decay"),
                    ) {
                        (Some(k), Some(b), Some(d)) => Some((k.min(u32::MAX as u64) as u32, b, d)),
                        _ => None,
                    },
                    scheduler: field(obj, "scheduler").and_then(JVal::as_str).map(str::to_string),
                },
            ),
            "monitor_name" => Line::NameMeta(
                field(obj, "monitor")?.as_num()?,
                field(obj, "name")?.as_str()?.to_string(),
            ),
            // Future meta kinds pass through harmlessly.
            _ => Line::UnknownMeta,
        });
    }
    let ts = field(obj, "ts")?.as_num()?;
    let thread = field(obj, "thread")?.as_num()?;
    let monitor = match field(obj, "monitor")? {
        JVal::Null => Event::NO_MONITOR,
        v => v.as_num()?,
    };
    let num = |key: &str| field(obj, key).and_then(JVal::as_num);
    let kind = match field(obj, "kind")?.as_str()? {
        "Acquire" => EventKind::Acquire,
        "Block" => EventKind::Block,
        "Commit" => EventKind::Commit,
        "Release" => EventKind::Release,
        "NonRevocable" => EventKind::NonRevocable,
        "DeadlockBroken" => EventKind::DeadlockBroken,
        "RevokeRequest" => EventKind::RevokeRequest { by: num("by")? },
        "InversionUnresolved" => EventKind::InversionUnresolved { by: num("by")? },
        "GovernorThrottle" => EventKind::GovernorThrottle { by: num("by")? },
        "PolicyFallback" => EventKind::PolicyFallback,
        "Rollback" => EventKind::Rollback { entries: num("entries")?, duration: num("duration")? },
        "DeadlockDetected" => EventKind::DeadlockDetected { cycle_len: num("cycle_len")? },
        _ => return Some(Line::UnknownKind),
    };
    Some(Line::Event(Event { ts, thread, monitor, kind }))
}

/// Import a JSONL trace from text. Never fails: damage is skipped and
/// counted in [`TraceImport::warnings`].
pub fn import_trace_jsonl(text: &str) -> TraceImport {
    let mut imp = TraceImport::default();
    let mut last_ts = 0u64;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Some(line) = parse_flat_object(line).as_deref().and_then(classify) else {
            imp.warnings.malformed_lines += 1;
            continue;
        };
        match line {
            Line::Event(ev) => {
                if ev.ts < last_ts {
                    imp.warnings.out_of_order += 1;
                    // The parsed-but-skipped event still tells us *which*
                    // episodes lost data: remember the pair so analysis
                    // can classify them as truncated, not unresolved.
                    imp.damaged.insert((ev.thread, ev.monitor));
                    continue;
                }
                last_ts = ev.ts;
                imp.events.push(ev);
            }
            Line::TraceMeta(unit, meta) => {
                imp.ts_unit = unit.or(imp.ts_unit);
                if !meta.is_empty() {
                    imp.run_meta = meta;
                }
            }
            Line::NameMeta(monitor, name) => {
                imp.names.insert(monitor, name);
            }
            Line::UnknownMeta => {}
            Line::UnknownKind => imp.warnings.unknown_kinds += 1,
        }
    }
    imp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_parser_handles_the_trace_vocabulary() {
        let obj = parse_flat_object(
            r#"{"ts":10,"thread":1,"monitor":null,"kind":"Rollback","entries":4,"duration":6}"#,
        )
        .expect("parses");
        assert_eq!(field(&obj, "ts"), Some(&JVal::Num(10)));
        assert_eq!(field(&obj, "monitor"), Some(&JVal::Null));
        assert_eq!(field(&obj, "kind"), Some(&JVal::Str("Rollback".into())));
    }

    #[test]
    fn flat_parser_rejects_truncation_and_trailing_junk() {
        assert!(parse_flat_object(r#"{"ts":10,"thread""#).is_none());
        assert!(parse_flat_object(r#"{"ts":10} extra"#).is_none());
        assert!(parse_flat_object("").is_none());
        assert!(parse_flat_object("not json at all").is_none());
    }

    #[test]
    fn string_escapes_round_trip() {
        let obj = parse_flat_object(r#"{"name":"a\"b\\c\nA"}"#).expect("parses");
        assert_eq!(field(&obj, "name"), Some(&JVal::Str("a\"b\\c\nA".into())));
    }

    #[test]
    fn import_reads_events_meta_and_names() {
        let text = concat!(
            "{\"meta\":\"trace\",\"ts_unit\":\"ticks\",\"version\":1}\n",
            "{\"meta\":\"monitor_name\",\"monitor\":7,\"name\":\"queue\"}\n",
            "{\"ts\":10,\"thread\":1,\"monitor\":7,\"kind\":\"Acquire\"}\n",
            "{\"ts\":22,\"thread\":1,\"monitor\":7,\"kind\":\"RevokeRequest\",\"by\":2}\n",
        );
        let imp = import_trace_jsonl(text);
        assert_eq!(imp.events.len(), 2);
        assert_eq!(imp.ts_unit, Some(TsUnit::VirtualTicks));
        assert_eq!(imp.names.get(&7).map(String::as_str), Some("queue"));
        assert_eq!(imp.events[1].kind, EventKind::RevokeRequest { by: 2 });
        assert_eq!(imp.warnings.total(), 0);
    }

    #[test]
    fn run_meta_round_trips_through_the_header() {
        let text = concat!(
            "{\"meta\":\"trace\",\"ts_unit\":\"ns\",\"version\":1,\"recorded\":120,",
            "\"dropped\":8,\"governor_k\":3,\"governor_backoff\":500,\"governor_decay\":2000,",
            "\"scheduler\":\"priority\"}\n",
            "{\"ts\":10,\"thread\":1,\"monitor\":3,\"kind\":\"Acquire\"}\n",
        );
        let imp = import_trace_jsonl(text);
        assert_eq!(imp.ts_unit, Some(TsUnit::WallNanos));
        assert_eq!(imp.run_meta.recorded, Some(120));
        assert_eq!(imp.run_meta.dropped, Some(8));
        assert_eq!(imp.run_meta.governor, Some((3, 500, 2000)));
        assert_eq!(imp.run_meta.scheduler.as_deref(), Some("priority"));
        assert_eq!(imp.events.len(), 1);
        assert_eq!(imp.warnings.total(), 0);

        // Headers without the extras leave the meta empty (legacy traces).
        let imp = import_trace_jsonl("{\"meta\":\"trace\",\"ts_unit\":\"ticks\",\"version\":1}\n");
        assert!(imp.run_meta.is_empty());
        // A partial governor triple is not a governor config.
        let imp = import_trace_jsonl(
            "{\"meta\":\"trace\",\"ts_unit\":\"ticks\",\"version\":1,\"governor_k\":3}\n",
        );
        assert_eq!(imp.run_meta.governor, None);
    }

    #[test]
    fn damage_is_counted_not_fatal() {
        let text = concat!(
            "{\"ts\":10,\"thread\":1,\"monitor\":3,\"kind\":\"Acquire\"}\n",
            "{\"ts\":12,\"thread\":1,\"moni", // truncated
            "\n",
            "{\"ts\":14,\"thread\":1,\"monitor\":3,\"kind\":\"Teleport\"}\n", // unknown kind
            "{\"ts\":5,\"thread\":2,\"monitor\":3,\"kind\":\"Block\"}\n",     // backwards
            "{\"ts\":20,\"thread\":1,\"monitor\":3,\"kind\":\"Release\"}\n",
        );
        let imp = import_trace_jsonl(text);
        assert_eq!(imp.events.len(), 2);
        assert_eq!(imp.warnings.malformed_lines, 1);
        assert_eq!(imp.warnings.unknown_kinds, 1);
        assert_eq!(imp.warnings.out_of_order, 1);
        assert_eq!(imp.warnings.total(), 3);
        // The out-of-order Block was parsed before being skipped, so its
        // (thread, monitor) pair is flagged as damaged; purely malformed
        // lines carry no identity and cannot be.
        assert_eq!(imp.damaged.iter().copied().collect::<Vec<_>>(), vec![(2, 3)]);
    }

    #[test]
    fn clean_import_reports_no_damaged_pairs() {
        let text = concat!(
            "{\"ts\":10,\"thread\":1,\"monitor\":3,\"kind\":\"Acquire\"}\n",
            "{\"ts\":20,\"thread\":1,\"monitor\":3,\"kind\":\"Release\"}\n",
        );
        let imp = import_trace_jsonl(text);
        assert!(imp.damaged.is_empty());
        assert_eq!(imp.warnings.total(), 0);
    }

    #[test]
    fn governor_kinds_round_trip() {
        let text = concat!(
            "{\"ts\":10,\"thread\":1,\"monitor\":3,\"kind\":\"GovernorThrottle\",\"by\":2}\n",
            "{\"ts\":11,\"thread\":1,\"monitor\":3,\"kind\":\"PolicyFallback\"}\n",
        );
        let imp = import_trace_jsonl(text);
        assert_eq!(imp.events.len(), 2);
        assert_eq!(imp.events[0].kind, EventKind::GovernorThrottle { by: 2 });
        assert_eq!(imp.events[1].kind, EventKind::PolicyFallback);
        // Without its `by` payload a throttle line is malformed.
        let imp = import_trace_jsonl(
            "{\"ts\":1,\"thread\":1,\"monitor\":2,\"kind\":\"GovernorThrottle\"}\n",
        );
        assert_eq!(imp.warnings.malformed_lines, 1);
    }

    #[test]
    fn missing_required_fields_are_malformed() {
        let imp = import_trace_jsonl("{\"ts\":10,\"thread\":1,\"kind\":\"Acquire\"}\n");
        assert!(imp.events.is_empty());
        assert_eq!(imp.warnings.malformed_lines, 1);
        // RevokeRequest without its `by` payload is malformed too.
        let imp = import_trace_jsonl(
            "{\"ts\":1,\"thread\":1,\"monitor\":2,\"kind\":\"RevokeRequest\"}\n",
        );
        assert_eq!(imp.warnings.malformed_lines, 1);
    }
}
