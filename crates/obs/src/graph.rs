//! Wait-for graph snapshots: who is transitively blocking whom, right
//! now.
//!
//! The runtimes maintain a live waits-for relation for deadlock
//! detection (`revmon-core::WaitsForGraph`); this module is its
//! *observable* form — a point-in-time copy of every
//! thread→monitor→holder blocking edge, decorated with the priorities
//! on each side and the governor's revocation streak for the
//! `(monitor, holder)` pair. Snapshots are deterministic (edges sorted
//! by waiter) and export as:
//!
//! * **DOT** ([`GraphSnapshot::to_dot`]) — threads as ellipses,
//!   monitors as boxes, a `waits` edge from each blocked thread to its
//!   monitor and a `holds` edge from the monitor to its owner; paste
//!   into Graphviz or an online renderer;
//! * **JSON** ([`GraphSnapshot::to_json`]) — one edge object per
//!   blocked thread, the `revmon serve` live-graph payload.
//!
//! [`GraphSnapshot::find_cycle`] runs the same chase the deadlock
//! detector uses, so a snapshot taken after a deadlock-break episode
//! can assert the break actually worked ([`GraphSnapshot::is_acyclic`]).

use std::collections::BTreeMap;

use crate::export::esc;

/// One observed blocking edge: `waiter` is blocked acquiring `monitor`,
/// currently held by `holder`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphEdge {
    /// The blocked thread.
    pub waiter: u64,
    /// The blocked thread's effective priority.
    pub waiter_priority: u8,
    /// The monitor it is trying to acquire.
    pub monitor: u64,
    /// The thread currently holding `monitor`.
    pub holder: u64,
    /// The holder's deposited priority.
    pub holder_priority: u8,
    /// The governor's consecutive-revocation streak for this
    /// `(monitor, holder)` pair (0 when ungoverned or unknown).
    pub governor_streak: u32,
}

/// A deterministic point-in-time copy of the waits-for relation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GraphSnapshot {
    /// Blocking edges, sorted by waiter id (each thread waits on at
    /// most one monitor, so the waiter is a unique key).
    pub edges: Vec<GraphEdge>,
}

impl GraphSnapshot {
    /// Build a snapshot from raw edges (sorted here, so callers may
    /// hand over hash-map iteration order).
    pub fn new(mut edges: Vec<GraphEdge>) -> Self {
        edges.sort_by_key(|e| e.waiter);
        GraphSnapshot { edges }
    }

    /// Whether no thread is blocked.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Find a deadlock cycle in the waiter→holder projection, if any.
    /// Returns the thread ids in cycle order. Same single-successor
    /// chase as the runtimes' detector: O(n²) worst case over a
    /// relation that is in practice tiny.
    pub fn find_cycle(&self) -> Option<Vec<u64>> {
        let succ: BTreeMap<u64, u64> = self.edges.iter().map(|e| (e.waiter, e.holder)).collect();
        for &start in succ.keys() {
            let mut path: Vec<u64> = Vec::new();
            let mut cur = start;
            loop {
                if let Some(pos) = path.iter().position(|&t| t == cur) {
                    return Some(path[pos..].to_vec());
                }
                path.push(cur);
                match succ.get(&cur) {
                    Some(&owner) => cur = owner,
                    None => break, // chain ends at a runnable thread
                }
            }
        }
        None
    }

    /// Whether the blocking relation is free of deadlock cycles.
    pub fn is_acyclic(&self) -> bool {
        self.find_cycle().is_none()
    }

    fn monitor_name(names: &BTreeMap<u64, String>, monitor: u64) -> String {
        match names.get(&monitor) {
            Some(n) => n.clone(),
            None => format!("monitor#{monitor}"),
        }
    }

    /// Render as Graphviz DOT. Deterministic: nodes and edges appear in
    /// sorted order, so two snapshots of the same state are
    /// byte-identical.
    pub fn to_dot(&self, names: &BTreeMap<u64, String>) -> String {
        let mut out = String::from("digraph waits_for {\n");
        out.push_str("  rankdir=LR;\n");
        // Thread nodes (waiters and holders), then monitor nodes.
        let mut threads: Vec<(u64, u8, bool)> = Vec::new(); // (tid, prio, is_holder)
        for e in &self.edges {
            if !threads.iter().any(|&(t, _, _)| t == e.waiter) {
                threads.push((e.waiter, e.waiter_priority, false));
            }
        }
        for e in &self.edges {
            if !threads.iter().any(|&(t, _, _)| t == e.holder) {
                threads.push((e.holder, e.holder_priority, true));
            }
        }
        threads.sort_by_key(|&(t, _, _)| t);
        for (t, prio, _) in &threads {
            out.push_str(&format!("  \"t{t}\" [label=\"t{t}\\nprio {prio}\"];\n"));
        }
        let mut monitors: Vec<u64> = self.edges.iter().map(|e| e.monitor).collect();
        monitors.sort_unstable();
        monitors.dedup();
        for m in &monitors {
            let label = esc(&Self::monitor_name(names, *m));
            out.push_str(&format!("  \"m{m}\" [shape=box, label=\"{label}\"];\n"));
        }
        // waits edges (thread → monitor), then holds edges (monitor →
        // thread, deduplicated: one holder per monitor).
        for e in &self.edges {
            out.push_str(&format!(
                "  \"t{}\" -> \"m{}\" [label=\"waits\"];\n",
                e.waiter, e.monitor
            ));
        }
        let mut held: Vec<(u64, u64, u32)> =
            self.edges.iter().map(|e| (e.monitor, e.holder, e.governor_streak)).collect();
        held.sort_unstable();
        held.dedup();
        for (m, h, streak) in held {
            let label =
                if streak > 0 { format!("holds (streak {streak})") } else { "holds".to_string() };
            out.push_str(&format!("  \"m{m}\" -> \"t{h}\" [label=\"{label}\"];\n"));
        }
        out.push_str("}\n");
        out
    }

    /// Render as one JSON document (the `revmon serve` `/graph`
    /// payload): edge objects plus a cycle report.
    pub fn to_json(&self, names: &BTreeMap<u64, String>) -> String {
        let mut out = String::from("{\n  \"edges\": [\n");
        let rows: Vec<String> = self
            .edges
            .iter()
            .map(|e| {
                let name = match names.get(&e.monitor) {
                    Some(n) => format!("\"{}\"", esc(n)),
                    None => "null".into(),
                };
                format!(
                    "    {{\"waiter\": {}, \"waiter_priority\": {}, \"monitor\": {}, \
                     \"monitor_name\": {name}, \"holder\": {}, \"holder_priority\": {}, \
                     \"governor_streak\": {}}}",
                    e.waiter,
                    e.waiter_priority,
                    e.monitor,
                    e.holder,
                    e.holder_priority,
                    e.governor_streak,
                )
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        if !rows.is_empty() {
            out.push('\n');
        }
        out.push_str("  ],\n");
        match self.find_cycle() {
            Some(c) => {
                let ids: Vec<String> = c.iter().map(u64::to_string).collect();
                out.push_str(&format!("  \"deadlock_cycle\": [{}]\n", ids.join(", ")));
            }
            None => out.push_str("  \"deadlock_cycle\": null\n"),
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(waiter: u64, monitor: u64, holder: u64) -> GraphEdge {
        GraphEdge {
            waiter,
            waiter_priority: 5,
            monitor,
            holder,
            holder_priority: 2,
            governor_streak: 0,
        }
    }

    #[test]
    fn snapshot_sorts_edges_by_waiter() {
        let g = GraphSnapshot::new(vec![edge(9, 1, 2), edge(3, 1, 2)]);
        assert_eq!(g.edges[0].waiter, 3);
        assert_eq!(g.edges[1].waiter, 9);
    }

    #[test]
    fn chain_is_acyclic_cycle_is_not() {
        let chain = GraphSnapshot::new(vec![edge(1, 10, 2), edge(2, 11, 3)]);
        assert!(chain.is_acyclic());
        let cyc = GraphSnapshot::new(vec![edge(1, 10, 2), edge(2, 11, 1)]);
        assert!(!cyc.is_acyclic());
        let c = cyc.find_cycle().unwrap();
        assert_eq!(c.len(), 2);
        assert!(c.contains(&1) && c.contains(&2));
    }

    #[test]
    fn dot_is_balanced_and_deterministic() {
        let names = [(10u64, "lock".to_string())].into_iter().collect();
        let a = GraphSnapshot::new(vec![edge(2, 10, 1), edge(3, 10, 1)]);
        let b = GraphSnapshot::new(vec![edge(3, 10, 1), edge(2, 10, 1)]);
        let dot = a.to_dot(&names);
        assert_eq!(dot, b.to_dot(&names), "snapshot order leaked into DOT");
        assert!(dot.starts_with("digraph waits_for {"));
        assert!(dot.ends_with("}\n"));
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
        assert!(dot.contains("\"t2\" -> \"m10\" [label=\"waits\"];"));
        // One holds edge despite two waiters on the monitor.
        assert_eq!(dot.matches("-> \"t1\"").count(), 1);
        assert!(dot.contains("label=\"lock\""));
    }

    #[test]
    fn json_carries_priorities_streaks_and_cycles() {
        let names = BTreeMap::new();
        let mut e = edge(1, 10, 2);
        e.governor_streak = 3;
        let g = GraphSnapshot::new(vec![e, edge(2, 11, 1)]);
        let json = g.to_json(&names);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"governor_streak\": 3"));
        assert!(json.contains("\"waiter_priority\": 5"));
        assert!(json.contains("\"deadlock_cycle\": [1, 2]"));

        let empty = GraphSnapshot::default();
        assert!(empty.to_json(&names).contains("\"deadlock_cycle\": null"));
    }
}
