//! The event sink: where both runtimes deliver their events.
//!
//! A sink owns sharded bounded ring buffers (so concurrent real threads
//! don't serialize on one lock), the derived latency histograms, and an
//! enable flag. When disabled, [`EventSink::record`] is a single relaxed
//! atomic load and a branch — the cheap path the instrumentation sites
//! rely on.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::event::Event;
use crate::latency::{Histograms, LatencyTracker};
use crate::ring::EventRing;

/// Number of ring shards; events hash to `thread % NSHARDS`.
const NSHARDS: usize = 16;

/// Default per-shard ring capacity.
const DEFAULT_SHARD_CAP: usize = 8192;

/// What one timestamp unit means for a sink's producers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TsUnit {
    /// Deterministic virtual-clock ticks (the VM runtime).
    VirtualTicks,
    /// Monotonic wall-clock nanoseconds (the locks runtime).
    WallNanos,
}

impl TsUnit {
    /// Convert a timestamp to Chrome-trace microseconds. Virtual ticks
    /// render as 1 tick = 1 µs so traces stay readable.
    pub fn to_micros(self, ts: u64) -> f64 {
        match self {
            TsUnit::VirtualTicks => ts as f64,
            TsUnit::WallNanos => ts as f64 / 1000.0,
        }
    }

    /// Unit suffix for human-readable summaries.
    pub fn suffix(self) -> &'static str {
        match self {
            TsUnit::VirtualTicks => "ticks",
            TsUnit::WallNanos => "ns",
        }
    }
}

/// Collects events from one or both runtimes.
pub struct EventSink {
    enabled: AtomicBool,
    seq: AtomicU64,
    dropped: AtomicU64,
    shards: [Mutex<EventRing>; NSHARDS],
    hists: Histograms,
    tracker: Mutex<LatencyTracker>,
    unit: TsUnit,
}

impl EventSink {
    /// Sink with the default per-shard capacity, enabled.
    pub fn new(unit: TsUnit) -> Self {
        Self::with_capacity(unit, DEFAULT_SHARD_CAP)
    }

    /// Sink whose shards each hold at most `shard_cap` events.
    pub fn with_capacity(unit: TsUnit, shard_cap: usize) -> Self {
        EventSink {
            enabled: AtomicBool::new(true),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            shards: std::array::from_fn(|_| Mutex::new(EventRing::new(shard_cap))),
            hists: Histograms::default(),
            tracker: Mutex::new(LatencyTracker::new()),
            unit,
        }
    }

    /// The clock domain this sink's timestamps live in.
    pub fn ts_unit(&self) -> TsUnit {
        self.unit
    }

    /// Whether recording is on. One relaxed load — this is the whole
    /// cost of a disabled event site.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Toggle recording.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Record one event: stamp a global sequence number, append to the
    /// thread's shard, and fold into the latency histograms. No-op (one
    /// branch) when disabled.
    pub fn record(&self, ev: Event) {
        if !self.is_enabled() {
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let shard = &self.shards[(ev.thread as usize) % NSHARDS];
        let lost = lock_clean(shard, |ring| ring.push(seq, ev));
        if lost {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        let mut tracker = match self.tracker.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        tracker.observe(&ev, &self.hists);
    }

    /// Events overwritten because a shard ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Total events recorded (including any since overwritten).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// The derived latency histograms.
    pub fn histograms(&self) -> &Histograms {
        &self.hists
    }

    /// Remove and return all buffered events in record order.
    pub fn drain(&self) -> Vec<Event> {
        let mut all: Vec<(u64, Event)> = Vec::new();
        for shard in &self.shards {
            all.extend(lock_clean(shard, |ring| ring.drain()));
        }
        all.sort_by_key(|(seq, _)| *seq);
        all.into_iter().map(|(_, ev)| ev).collect()
    }
}

/// Lock a shard, swallowing poison: a panicking thread mid-revocation
/// (the locks runtime unwinds on purpose) must not wedge tracing.
fn lock_clean<T, R>(m: &Mutex<T>, f: impl FnOnce(&mut T) -> R) -> R {
    let mut g = match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    f(&mut g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(ts: u64, thread: u64) -> Event {
        Event { ts, thread, monitor: 1, kind: EventKind::Acquire }
    }

    #[test]
    fn drain_preserves_record_order_across_shards() {
        let sink = EventSink::new(TsUnit::VirtualTicks);
        for i in 0..100u64 {
            sink.record(ev(i, i % 7)); // spread across shards
        }
        let drained = sink.drain();
        assert_eq!(drained.len(), 100);
        let ts: Vec<u64> = drained.iter().map(|e| e.ts).collect();
        assert!(ts.windows(2).all(|w| w[0] < w[1]), "order lost: {ts:?}");
        assert!(sink.drain().is_empty());
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = EventSink::new(TsUnit::WallNanos);
        sink.set_enabled(false);
        sink.record(ev(1, 1));
        assert!(sink.drain().is_empty());
        assert_eq!(sink.recorded(), 0);
        assert_eq!(sink.histograms().section_length.count(), 0);
    }

    #[test]
    fn overflow_counts_dropped_events() {
        let sink = EventSink::with_capacity(TsUnit::WallNanos, 2);
        for i in 0..10u64 {
            sink.record(ev(i, 0)); // one shard
        }
        assert_eq!(sink.dropped(), 8);
        assert_eq!(sink.drain().len(), 2);
    }

    #[test]
    fn histograms_fold_through_record() {
        let sink = EventSink::new(TsUnit::VirtualTicks);
        sink.record(Event { ts: 5, thread: 1, monitor: 3, kind: EventKind::Acquire });
        sink.record(Event { ts: 25, thread: 1, monitor: 3, kind: EventKind::Release });
        assert_eq!(sink.histograms().section_length.count(), 1);
        assert_eq!(sink.histograms().section_length.max(), 20);
    }
}
