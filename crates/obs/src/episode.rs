//! Priority-inversion **episode** reconstruction.
//!
//! The paper's argument (§4) is about episodes, not isolated events: a
//! high-priority thread blocks behind a lower-priority holder, the
//! runtime reacts (revocation, priority inheritance, or nothing), and
//! eventually the blocked thread gets the monitor — or doesn't. This
//! module replays a recorded event stream through a per-monitor state
//! machine and reduces `Block → RevokeRequest → Rollback/Commit →
//! Acquire` sequences into [`Episode`]s with:
//!
//! * a **resolution** classification ([`Resolution`]);
//! * the **inversion latency** — requester's block (or the first revoke
//!   request) to the requester's acquire;
//! * the **wasted work** the resolution cost: undo entries rolled back,
//!   discarded section time re-executed later, and the repeat-revocation
//!   count (a livelock signal when it climbs).
//!
//! The builder is runtime-agnostic: it consumes [`Event`]s whether they
//! came live from an [`EventSink`](crate::EventSink) drain or from a
//! re-imported JSONL trace, in either clock domain.

use std::collections::HashMap;

use crate::event::{Event, EventKind};

/// How an episode ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Resolution {
    /// The holder was revoked (rolled back) and the requester got in.
    Revocation,
    /// The holder finished and released on its own before any rollback;
    /// the requester waited it out (the blocking baseline's only mode,
    /// and the revocation policy's mode for non-revocable sections that
    /// still complete).
    NaturalRelease,
    /// The episode was resolved by the deadlock breaker revoking a
    /// victim in a waits-for cycle.
    DeadlockBreak,
    /// The stream ended with the requester still waiting (non-revocable
    /// holder that never released, or a truncated trace).
    Unresolved,
    /// The episode touched events on skipped (torn/out-of-order) trace
    /// lines: its real outcome is unknowable from what survived, so it
    /// is reported as truncated rather than biasing `unresolved`.
    Truncated,
}

impl Resolution {
    /// Stable name used by every exporter.
    pub fn name(&self) -> &'static str {
        match self {
            Resolution::Revocation => "revocation",
            Resolution::NaturalRelease => "natural_release",
            Resolution::DeadlockBreak => "deadlock_break",
            Resolution::Unresolved => "unresolved",
            Resolution::Truncated => "truncated",
        }
    }

    /// All resolutions, in report order.
    pub const ALL: [Resolution; 5] = [
        Resolution::Revocation,
        Resolution::NaturalRelease,
        Resolution::DeadlockBreak,
        Resolution::Unresolved,
        Resolution::Truncated,
    ];
}

/// One reconstructed priority-inversion episode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Episode {
    /// Contended monitor.
    pub monitor: u64,
    /// The (lower-priority) thread that held the monitor when the
    /// episode opened.
    pub holder: u64,
    /// The (higher-priority) blocked requester, or [`Event::NO_THREAD`]
    /// when unknown (deadlock-break episodes attribute no requester).
    pub requester: u64,
    /// When the inversion began: the requester's `Block` timestamp when
    /// observed, else the first `RevokeRequest`/`DeadlockBroken`.
    pub start: u64,
    /// When the requester acquired the monitor (`None` if unresolved).
    pub end: Option<u64>,
    /// Classification of how it ended.
    pub resolution: Resolution,
    /// Rollbacks performed on this monitor during the episode.
    pub rollbacks: u64,
    /// Undo-log entries restored by those rollbacks (wasted writes).
    pub wasted_entries: u64,
    /// Clock units of discarded section work: holder acquire → rollback
    /// completion, summed over rollbacks — time that must be re-executed.
    pub wasted_time: u64,
    /// Revoke requests observed while the episode was open. More than
    /// one request per rollback means the holder kept getting re-flagged
    /// — the livelock signal `max_consecutive_revocations` guards.
    pub revoke_requests: u64,
    /// `InversionUnresolved` marks seen (holder was non-revocable when
    /// flagged).
    pub unresolvable_marks: u64,
    /// Revocations the governor denied during this episode (the
    /// contender was made to block instead). A non-zero count marks a
    /// *governed* episode.
    pub governor_throttles: u64,
    /// Fresh fallback-to-blocking windows the governor opened during
    /// this episode.
    pub policy_fallbacks: u64,
    /// Timestamp of the first genuine `RevokeRequest` (not throttles or
    /// unresolvable marks), when one was observed.
    pub first_revoke: Option<u64>,
    /// Timestamp at which the last rollback of the episode completed.
    pub last_rollback_end: Option<u64>,
    /// Measured duration of that last rollback (clock units).
    pub last_rollback_duration: u64,
}

/// The critical path of a resolved episode: where the requester's wait
/// actually went, segment by segment. Segments sum to
/// [`Episode::latency`] for rollback-resolved episodes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CriticalPath {
    /// Requester blocked before the runtime reacted (block → first
    /// revoke request; the whole latency when nothing was revoked).
    pub blocked_wait: u64,
    /// Revoke request → the victim actually starting its rollback (the
    /// victim runs to its next yield point first).
    pub signal: u64,
    /// The rollback itself: walking the undo log and restoring values.
    pub undo_walk: u64,
    /// Rollback completion → the requester's acquire (queue hand-off).
    pub handoff: u64,
}

impl CriticalPath {
    /// The segments in wait order, with their stable names (used as
    /// flamegraph frames and report labels).
    pub fn segments(&self) -> [(&'static str, u64); 4] {
        [
            ("blocked-wait", self.blocked_wait),
            ("signal", self.signal),
            ("undo-walk", self.undo_walk),
            ("handoff", self.handoff),
        ]
    }

    /// Sum of all segments.
    pub fn total(&self) -> u64 {
        self.blocked_wait + self.signal + self.undo_walk + self.handoff
    }
}

impl Episode {
    /// Inversion latency: episode start to the requester's acquire.
    pub fn latency(&self) -> Option<u64> {
        self.end.map(|e| e.saturating_sub(self.start))
    }

    /// Break the latency of a resolved episode into critical-path
    /// segments. `None` while the episode is unresolved. Episodes that
    /// ended without any rollback put the whole wait into
    /// `blocked_wait` — no revocation machinery ran on their critical
    /// path.
    pub fn critical_path(&self) -> Option<CriticalPath> {
        let end = self.end?;
        Some(match self.last_rollback_end {
            Some(rb_end) => {
                let rb_start = rb_end.saturating_sub(self.last_rollback_duration);
                // Deadlock breaks have no RevokeRequest: signaling is
                // folded into blocked-wait by anchoring at the rollback.
                let signaled = self.first_revoke.unwrap_or(rb_start).min(rb_start);
                CriticalPath {
                    blocked_wait: signaled.saturating_sub(self.start),
                    signal: rb_start.saturating_sub(signaled),
                    undo_walk: self.last_rollback_duration,
                    handoff: end.saturating_sub(rb_end),
                }
            }
            None => CriticalPath {
                blocked_wait: end.saturating_sub(self.start),
                ..CriticalPath::default()
            },
        })
    }
}

/// In-flight episode state (one per contended monitor).
struct OpenEpisode {
    holder: u64,
    requester: u64,
    start: u64,
    rollbacks: u64,
    wasted_entries: u64,
    wasted_time: u64,
    revoke_requests: u64,
    unresolvable_marks: u64,
    governor_throttles: u64,
    policy_fallbacks: u64,
    deadlock: bool,
    first_revoke: Option<u64>,
    last_rollback_end: Option<u64>,
    last_rollback_duration: u64,
}

impl OpenEpisode {
    fn close(self, monitor: u64, end: Option<u64>, resolution: Resolution) -> Episode {
        Episode {
            monitor,
            holder: self.holder,
            requester: self.requester,
            start: self.start,
            end,
            resolution,
            rollbacks: self.rollbacks,
            wasted_entries: self.wasted_entries,
            wasted_time: self.wasted_time,
            revoke_requests: self.revoke_requests,
            unresolvable_marks: self.unresolvable_marks,
            governor_throttles: self.governor_throttles,
            policy_fallbacks: self.policy_fallbacks,
            first_revoke: self.first_revoke,
            last_rollback_end: self.last_rollback_end,
            last_rollback_duration: self.last_rollback_duration,
        }
    }

    fn resolution_on_acquire(&self) -> Resolution {
        if self.deadlock {
            Resolution::DeadlockBreak
        } else if self.rollbacks > 0 {
            Resolution::Revocation
        } else {
            Resolution::NaturalRelease
        }
    }
}

/// Streaming reconstruction: feed events in order, then
/// [`EpisodeBuilder::finish`].
#[derive(Default)]
pub struct EpisodeBuilder {
    /// Open episode per monitor.
    open: HashMap<u64, OpenEpisode>,
    /// `(thread, monitor)` → block timestamp (entry-queue waits).
    block_since: HashMap<(u64, u64), u64>,
    /// `(thread, monitor)` → outermost-acquire timestamp (open sections).
    section_since: HashMap<(u64, u64), u64>,
    /// Threads flagged by the deadlock breaker whose rollback has not
    /// been seen yet (the VM emits `DeadlockBroken` without a monitor;
    /// the victim's next rollback names it).
    deadlock_victims: HashMap<u64, u64>,
    done: Vec<Episode>,
}

impl EpisodeBuilder {
    /// Fresh builder with no open state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one event into the reconstruction. Events must arrive in
    /// stream order (the importer and sink drains guarantee this).
    pub fn observe(&mut self, ev: &Event) {
        let key = (ev.thread, ev.monitor);
        match ev.kind {
            EventKind::Block => {
                self.block_since.entry(key).or_insert(ev.ts);
            }
            EventKind::RevokeRequest { by }
            | EventKind::InversionUnresolved { by }
            | EventKind::GovernorThrottle { by } => {
                let start = self.block_since.get(&(by, ev.monitor)).copied().unwrap_or(ev.ts);
                let ep = self.open.entry(ev.monitor).or_insert(OpenEpisode {
                    holder: ev.thread,
                    requester: by,
                    start,
                    rollbacks: 0,
                    wasted_entries: 0,
                    wasted_time: 0,
                    revoke_requests: 0,
                    unresolvable_marks: 0,
                    governor_throttles: 0,
                    policy_fallbacks: 0,
                    deadlock: false,
                    first_revoke: None,
                    last_rollback_end: None,
                    last_rollback_duration: 0,
                });
                match ev.kind {
                    EventKind::InversionUnresolved { .. } => ep.unresolvable_marks += 1,
                    EventKind::GovernorThrottle { .. } => ep.governor_throttles += 1,
                    _ => {
                        ep.revoke_requests += 1;
                        ep.first_revoke.get_or_insert(ev.ts);
                    }
                }
            }
            EventKind::PolicyFallback => {
                if let Some(ep) = self.open.get_mut(&ev.monitor) {
                    ep.policy_fallbacks += 1;
                }
            }
            EventKind::Rollback { entries, duration } => {
                let deadlock = self.deadlock_victims.remove(&ev.thread);
                let section_start = self.section_since.remove(&key);
                let ep = match self.open.get_mut(&ev.monitor) {
                    Some(ep) => ep,
                    None => {
                        // No revoke request observed for this monitor —
                        // only the deadlock breaker revokes without one.
                        let start = deadlock.unwrap_or(ev.ts);
                        self.open.entry(ev.monitor).or_insert(OpenEpisode {
                            holder: ev.thread,
                            requester: Event::NO_THREAD,
                            start,
                            rollbacks: 0,
                            wasted_entries: 0,
                            wasted_time: 0,
                            revoke_requests: 0,
                            unresolvable_marks: 0,
                            governor_throttles: 0,
                            policy_fallbacks: 0,
                            deadlock: false,
                            first_revoke: None,
                            last_rollback_end: None,
                            last_rollback_duration: 0,
                        })
                    }
                };
                ep.rollbacks += 1;
                ep.wasted_entries += entries;
                ep.last_rollback_end = Some(ev.ts);
                ep.last_rollback_duration = duration;
                if deadlock.is_some() {
                    ep.deadlock = true;
                }
                if let Some(t0) = section_start {
                    // Everything from the acquire to the end of the
                    // rollback is work the holder must redo.
                    ep.wasted_time += ev.ts.saturating_sub(t0);
                }
            }
            EventKind::Acquire => {
                self.block_since.remove(&key);
                self.section_since.entry(key).or_insert(ev.ts);
                let closes = self.open.get(&ev.monitor).is_some_and(|ep| {
                    ev.thread == ep.requester
                        || (ep.requester == Event::NO_THREAD && ev.thread != ep.holder)
                });
                if closes {
                    let ep = self.open.remove(&ev.monitor).expect("checked above");
                    let resolution = ep.resolution_on_acquire();
                    self.done.push(ep.close(ev.monitor, Some(ev.ts), resolution));
                }
            }
            EventKind::Release => {
                self.section_since.remove(&key);
            }
            EventKind::DeadlockBroken => {
                if ev.monitor == Event::NO_MONITOR {
                    // VM shape: the victim's next rollback carries the monitor.
                    self.deadlock_victims.insert(ev.thread, ev.ts);
                } else if let Some(ep) = self.open.get_mut(&ev.monitor) {
                    ep.deadlock = true;
                } else {
                    self.deadlock_victims.insert(ev.thread, ev.ts);
                }
            }
            EventKind::Commit | EventKind::NonRevocable | EventKind::DeadlockDetected { .. } => {}
        }
    }

    /// Close the stream: anything still open becomes an unresolved
    /// episode. Episodes are returned ordered by start time (monitor id
    /// breaks ties) so reports are deterministic.
    pub fn finish(mut self) -> Vec<Episode> {
        let mut open: Vec<(u64, OpenEpisode)> = self.open.drain().collect();
        open.sort_by_key(|(m, ep)| (ep.start, *m));
        for (monitor, ep) in open {
            self.done.push(ep.close(monitor, None, Resolution::Unresolved));
        }
        self.done.sort_by_key(|e| (e.start, e.monitor));
        self.done
    }
}

/// Reconstruct the episodes of a complete event stream.
pub fn reconstruct_episodes(events: &[Event]) -> Vec<Episode> {
    let mut b = EpisodeBuilder::new();
    for ev in events {
        b.observe(ev);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, thread: u64, monitor: u64, kind: EventKind) -> Event {
        Event { ts, thread, monitor, kind }
    }

    #[test]
    fn revocation_episode_reconstructs_with_wasted_work() {
        let eps = reconstruct_episodes(&[
            ev(10, 1, 7, EventKind::Acquire),
            ev(20, 2, 7, EventKind::Block),
            ev(22, 1, 7, EventKind::RevokeRequest { by: 2 }),
            ev(30, 1, 7, EventKind::Rollback { entries: 4, duration: 6 }),
            ev(31, 2, 7, EventKind::Acquire),
            ev(40, 2, 7, EventKind::Commit),
            ev(40, 2, 7, EventKind::Release),
        ]);
        assert_eq!(eps.len(), 1);
        let e = &eps[0];
        assert_eq!(e.resolution, Resolution::Revocation);
        assert_eq!((e.monitor, e.holder, e.requester), (7, 1, 2));
        assert_eq!(e.start, 20); // the requester's Block, not the request
        assert_eq!(e.latency(), Some(11));
        assert_eq!(e.rollbacks, 1);
        assert_eq!(e.wasted_entries, 4);
        assert_eq!(e.wasted_time, 20); // acquire@10 → rollback done@30
        assert_eq!(e.revoke_requests, 1);
    }

    #[test]
    fn critical_path_segments_sum_to_latency() {
        let eps = reconstruct_episodes(&[
            ev(10, 1, 7, EventKind::Acquire),
            ev(20, 2, 7, EventKind::Block),
            ev(22, 1, 7, EventKind::RevokeRequest { by: 2 }),
            ev(30, 1, 7, EventKind::Rollback { entries: 4, duration: 6 }),
            ev(31, 2, 7, EventKind::Acquire),
        ]);
        let cp = eps[0].critical_path().expect("resolved episode");
        assert_eq!(cp.blocked_wait, 2); // block@20 → request@22
        assert_eq!(cp.signal, 2); // request@22 → rollback start@24
        assert_eq!(cp.undo_walk, 6); // the measured rollback
        assert_eq!(cp.handoff, 1); // rollback done@30 → acquire@31
        assert_eq!(cp.total(), eps[0].latency().unwrap());

        // Natural release: the whole wait is blocked time.
        let eps = reconstruct_episodes(&[
            ev(10, 1, 7, EventKind::Acquire),
            ev(20, 2, 7, EventKind::Block),
            ev(21, 1, 7, EventKind::InversionUnresolved { by: 2 }),
            ev(50, 1, 7, EventKind::Release),
            ev(51, 2, 7, EventKind::Acquire),
        ]);
        let cp = eps[0].critical_path().unwrap();
        assert_eq!(cp.blocked_wait, 31);
        assert_eq!((cp.signal, cp.undo_walk, cp.handoff), (0, 0, 0));

        // Unresolved episodes have no critical path yet.
        let eps = reconstruct_episodes(&[
            ev(10, 1, 7, EventKind::Acquire),
            ev(20, 2, 7, EventKind::Block),
            ev(22, 1, 7, EventKind::RevokeRequest { by: 2 }),
        ]);
        assert!(eps[0].critical_path().is_none());
    }

    #[test]
    fn natural_release_when_holder_finishes_first() {
        let eps = reconstruct_episodes(&[
            ev(10, 1, 7, EventKind::Acquire),
            ev(20, 2, 7, EventKind::Block),
            ev(21, 1, 7, EventKind::InversionUnresolved { by: 2 }), // non-revocable
            ev(50, 1, 7, EventKind::Commit),
            ev(50, 1, 7, EventKind::Release),
            ev(51, 2, 7, EventKind::Acquire),
        ]);
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].resolution, Resolution::NaturalRelease);
        assert_eq!(eps[0].latency(), Some(31));
        assert_eq!(eps[0].rollbacks, 0);
        assert_eq!(eps[0].unresolvable_marks, 1);
    }

    #[test]
    fn unresolved_when_stream_ends_mid_episode() {
        let eps = reconstruct_episodes(&[
            ev(10, 1, 7, EventKind::Acquire),
            ev(20, 2, 7, EventKind::Block),
            ev(22, 1, 7, EventKind::InversionUnresolved { by: 2 }),
        ]);
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].resolution, Resolution::Unresolved);
        assert_eq!(eps[0].end, None);
        assert_eq!(eps[0].latency(), None);
    }

    #[test]
    fn deadlock_break_links_victim_rollback_to_monitor() {
        // VM shape: DeadlockBroken names only the victim; its rollback
        // names the monitor; the other cycle member then acquires it.
        let eps = reconstruct_episodes(&[
            ev(10, 1, 3, EventKind::Acquire), // kant takes A
            ev(11, 2, 4, EventKind::Acquire), // hegel takes B
            ev(20, 1, 4, EventKind::Block),   // kant blocks on B
            ev(21, 2, 3, EventKind::Block),   // hegel blocks on A → cycle
            ev(21, 0, u64::MAX, EventKind::DeadlockDetected { cycle_len: 2 }),
            ev(21, 2, u64::MAX, EventKind::DeadlockBroken),
            ev(25, 2, 4, EventKind::Rollback { entries: 3, duration: 2 }),
            ev(26, 1, 4, EventKind::Acquire), // kant gets B
        ]);
        assert_eq!(eps.len(), 1);
        let e = &eps[0];
        assert_eq!(e.resolution, Resolution::DeadlockBreak);
        assert_eq!(e.monitor, 4);
        assert_eq!(e.holder, 2);
        assert_eq!(e.wasted_entries, 3);
        assert_eq!(e.wasted_time, 14); // acquire@11 → rollback@25
    }

    #[test]
    fn repeat_revocations_count_as_livelock_signal() {
        let eps = reconstruct_episodes(&[
            ev(10, 1, 7, EventKind::Acquire),
            ev(20, 2, 7, EventKind::Block),
            ev(22, 1, 7, EventKind::RevokeRequest { by: 2 }),
            ev(30, 1, 7, EventKind::Rollback { entries: 2, duration: 1 }),
            ev(32, 1, 7, EventKind::Acquire), // holder sneaks back in
            ev(33, 1, 7, EventKind::RevokeRequest { by: 2 }),
            ev(40, 1, 7, EventKind::Rollback { entries: 2, duration: 1 }),
            ev(41, 2, 7, EventKind::Acquire),
        ]);
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].revoke_requests, 2);
        assert_eq!(eps[0].rollbacks, 2);
        assert_eq!(eps[0].wasted_entries, 4);
        assert_eq!(eps[0].resolution, Resolution::Revocation);
    }

    #[test]
    fn governed_episode_counts_throttles_and_fallbacks() {
        // Holder 1 burns its budget (one revocation), then the governor
        // denies further revocations; the contender waits the holder out.
        let eps = reconstruct_episodes(&[
            ev(10, 1, 7, EventKind::Acquire),
            ev(20, 2, 7, EventKind::Block),
            ev(22, 1, 7, EventKind::RevokeRequest { by: 2 }),
            ev(30, 1, 7, EventKind::Rollback { entries: 2, duration: 1 }),
            ev(32, 1, 7, EventKind::Acquire), // holder re-enters first
            ev(33, 1, 7, EventKind::GovernorThrottle { by: 2 }),
            ev(33, 1, 7, EventKind::PolicyFallback),
            ev(35, 1, 7, EventKind::GovernorThrottle { by: 2 }),
            ev(50, 1, 7, EventKind::Commit),
            ev(50, 1, 7, EventKind::Release),
            ev(51, 2, 7, EventKind::Acquire),
        ]);
        assert_eq!(eps.len(), 1);
        let e = &eps[0];
        assert_eq!(e.governor_throttles, 2);
        assert_eq!(e.policy_fallbacks, 1);
        assert_eq!(e.rollbacks, 1);
        assert_eq!(e.resolution, Resolution::Revocation);
        assert_eq!(e.end, Some(51));
    }

    #[test]
    fn throttle_alone_opens_a_governed_episode() {
        // A governed pair can be throttled with no RevokeRequest at all
        // (budget burnt in an earlier episode): the throttle itself must
        // open the episode so the wait is still accounted.
        let eps = reconstruct_episodes(&[
            ev(10, 1, 7, EventKind::Acquire),
            ev(20, 2, 7, EventKind::Block),
            ev(21, 1, 7, EventKind::GovernorThrottle { by: 2 }),
            ev(40, 1, 7, EventKind::Release),
            ev(41, 2, 7, EventKind::Acquire),
        ]);
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].governor_throttles, 1);
        assert_eq!(eps[0].resolution, Resolution::NaturalRelease);
        assert_eq!(eps[0].start, 20);
    }

    #[test]
    fn independent_monitors_reconstruct_independent_episodes() {
        let eps = reconstruct_episodes(&[
            ev(10, 1, 7, EventKind::Acquire),
            ev(11, 3, 9, EventKind::Acquire),
            ev(20, 2, 7, EventKind::Block),
            ev(21, 4, 9, EventKind::Block),
            ev(22, 1, 7, EventKind::RevokeRequest { by: 2 }),
            ev(23, 3, 9, EventKind::RevokeRequest { by: 4 }),
            ev(30, 1, 7, EventKind::Rollback { entries: 1, duration: 1 }),
            ev(31, 2, 7, EventKind::Acquire),
            ev(35, 3, 9, EventKind::Rollback { entries: 2, duration: 1 }),
            ev(36, 4, 9, EventKind::Acquire),
        ]);
        assert_eq!(eps.len(), 2);
        assert_eq!(eps[0].monitor, 7);
        assert_eq!(eps[1].monitor, 9);
        assert!(eps.iter().all(|e| e.resolution == Resolution::Revocation));
    }
}
