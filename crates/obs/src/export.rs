//! Exporters: JSON Lines events, Chrome `trace_event` JSON (loadable in
//! Perfetto / `chrome://tracing`), and a human-readable text summary.
//!
//! JSON is emitted by hand — the payloads are flat and numeric, and the
//! build environment has no serde. Everything writes through
//! `io::Write` so the CLI can target files and tests can target `Vec`s.

use std::collections::HashMap;
use std::io::{self, Write};

use crate::event::{Event, EventKind};
use crate::latency::Histograms;
use crate::sink::TsUnit;

/// Escape a string for inclusion in a JSON string literal.
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn kind_extras(kind: &EventKind) -> String {
    match kind {
        EventKind::RevokeRequest { by }
        | EventKind::InversionUnresolved { by }
        | EventKind::GovernorThrottle { by } => {
            format!(",\"by\":{by}")
        }
        EventKind::Rollback { entries, duration } => {
            format!(",\"entries\":{entries},\"duration\":{duration}")
        }
        EventKind::DeadlockDetected { cycle_len } => format!(",\"cycle_len\":{cycle_len}"),
        _ => String::new(),
    }
}

/// Write events as JSON Lines: one flat object per event, in order.
pub fn write_events_jsonl<W: Write>(w: &mut W, events: &[Event]) -> io::Result<()> {
    for ev in events {
        let monitor = if ev.monitor == Event::NO_MONITOR {
            "null".to_string()
        } else {
            ev.monitor.to_string()
        };
        writeln!(
            w,
            "{{\"ts\":{},\"thread\":{},\"monitor\":{},\"kind\":\"{}\"{}}}",
            ev.ts,
            ev.thread,
            monitor,
            ev.kind.name(),
            kind_extras(&ev.kind),
        )?;
    }
    Ok(())
}

/// Optional run context carried in the trace meta header, so `revmon
/// analyze` can label a trace without the original CLI flags: sink
/// drop accounting (was the recording lossy?), the effective governor
/// config (was the run governed?), and the scheduler name. Every field
/// is optional; absent fields are simply not written, which keeps
/// [`write_trace_jsonl`]'s output — and the lossless round-trip
/// guarantee — byte-identical to the pre-`RunMeta` format.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunMeta {
    /// Events the sink recorded (accepted into the ring).
    pub recorded: Option<u64>,
    /// Events dropped on ring overflow. `Some(0)` is meaningful: it
    /// asserts the trace is complete, which silence cannot.
    pub dropped: Option<u64>,
    /// Effective governor config as `(k, backoff, decay)`; `k == 0`
    /// means the governor was disabled but explicitly so.
    pub governor: Option<(u32, u64, u64)>,
    /// Scheduler name (e.g. `"priority"`, `"lottery"`).
    pub scheduler: Option<String>,
}

impl RunMeta {
    /// Whether no field is set (header renders identically to the
    /// meta-less format).
    pub fn is_empty(&self) -> bool {
        *self == RunMeta::default()
    }

    fn header_extras(&self) -> String {
        let mut s = String::new();
        if let Some(r) = self.recorded {
            s.push_str(&format!(",\"recorded\":{r}"));
        }
        if let Some(d) = self.dropped {
            s.push_str(&format!(",\"dropped\":{d}"));
        }
        if let Some((k, backoff, decay)) = self.governor {
            s.push_str(&format!(
                ",\"governor_k\":{k},\"governor_backoff\":{backoff},\"governor_decay\":{decay}"
            ));
        }
        if let Some(sched) = &self.scheduler {
            s.push_str(&format!(",\"scheduler\":\"{}\"", esc(sched)));
        }
        s
    }
}

/// Write a full analyzable trace as JSON Lines: a meta header naming
/// the clock unit, one `monitor_name` meta line per named monitor, then
/// one flat object per event (same shape as [`write_events_jsonl`]).
/// This is the format `revmon analyze` imports; see
/// [`crate::import_trace_jsonl`].
pub fn write_trace_jsonl<W: Write>(
    w: &mut W,
    events: &[Event],
    unit: TsUnit,
    names: &std::collections::BTreeMap<u64, String>,
) -> io::Result<()> {
    write_trace_jsonl_with(w, events, unit, names, &RunMeta::default())
}

/// [`write_trace_jsonl`] with run context appended to the meta header.
/// With an empty [`RunMeta`] the output is byte-identical to
/// [`write_trace_jsonl`].
pub fn write_trace_jsonl_with<W: Write>(
    w: &mut W,
    events: &[Event],
    unit: TsUnit,
    names: &std::collections::BTreeMap<u64, String>,
    meta: &RunMeta,
) -> io::Result<()> {
    writeln!(
        w,
        "{{\"meta\":\"trace\",\"ts_unit\":\"{}\",\"version\":1{}}}",
        unit.suffix(),
        meta.header_extras()
    )?;
    for (monitor, name) in names {
        writeln!(
            w,
            "{{\"meta\":\"monitor_name\",\"monitor\":{monitor},\"name\":\"{}\"}}",
            esc(name)
        )?;
    }
    write_events_jsonl(w, events)
}

/// Write events in Chrome `trace_event` format.
///
/// Monitor-held time and entry-queue blocking render as duration spans
/// (`B`/`E`), rollbacks as complete events (`X`) with their measured
/// duration, and everything else as instants (`i`).
///
/// Ring-buffer overflow can drop events mid-stream, orphaning a `B`
/// with no `E` (dropped `Release`/`Acquire`) or producing an `E` with
/// no matching `B` (dropped `Block`/`Acquire`). Such tears are repaired
/// in place — a stale blocked span is closed when its thread blocks or
/// acquires elsewhere, and a close with no open span is skipped — and
/// the number of repairs is returned so callers can surface damage.
/// Spans still open at the end of the stream are closed at the last
/// timestamp (normal truncation, not counted as repairs) so the file
/// always balances.
pub fn write_chrome_trace<W: Write>(w: &mut W, events: &[Event], unit: TsUnit) -> io::Result<u64> {
    let mut first = true;
    let mut emit = |w: &mut W, json: String| -> io::Result<()> {
        if first {
            first = false;
            write!(w, "\n{json}")
        } else {
            write!(w, ",\n{json}")
        }
    };
    let span = |ph: &str, name: &str, cat: &str, tid: u64, ts: f64| {
        format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{:.3}}}",
            esc(name),
            cat,
            ph,
            tid,
            ts
        )
    };

    write!(w, "{{\"traceEvents\":[")?;
    // Per-thread stack of monitors with an open "held" span, and the
    // monitor each thread is currently blocked on.
    let mut held: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut blocked: HashMap<u64, u64> = HashMap::new();
    // Monitors whose held span a rollback force-closed; the unwind's
    // own Release events for them are expected, not orphans.
    let mut unwound: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut repairs = 0u64;
    let mut last_ts = 0u64;

    for ev in events {
        last_ts = last_ts.max(ev.ts);
        let us = unit.to_micros(ev.ts);
        match ev.kind {
            EventKind::Block => {
                if let Some(&m) = blocked.get(&ev.thread) {
                    if m != ev.monitor {
                        // The Acquire that ended the old blocked span was
                        // dropped: synthesize its E here.
                        let name = format!("blocked: monitor {m}");
                        emit(w, span("E", &name, "blocking", ev.thread, us))?;
                        repairs += 1;
                        blocked.insert(ev.thread, ev.monitor);
                        let name = format!("blocked: monitor {}", ev.monitor);
                        emit(w, span("B", &name, "blocking", ev.thread, us))?;
                    }
                    // Re-blocking on the same monitor keeps the span open.
                } else {
                    blocked.insert(ev.thread, ev.monitor);
                    let name = format!("blocked: monitor {}", ev.monitor);
                    emit(w, span("B", &name, "blocking", ev.thread, us))?;
                }
            }
            EventKind::Acquire => {
                if let Some(m) = blocked.remove(&ev.thread) {
                    let name = format!("blocked: monitor {m}");
                    emit(w, span("E", &name, "blocking", ev.thread, us))?;
                    if m != ev.monitor {
                        // Blocked on one monitor, acquired another: the
                        // intervening Acquire/Block pair was dropped.
                        repairs += 1;
                    }
                }
                let stack = held.entry(ev.thread).or_default();
                // Reentrant acquires keep the existing span open.
                if !stack.contains(&ev.monitor) {
                    stack.push(ev.monitor);
                    let name = format!("monitor {} held", ev.monitor);
                    emit(w, span("B", &name, "monitor", ev.thread, us))?;
                }
                // A fresh acquire supersedes any stale unwind debt.
                if let Some(pend) = unwound.get_mut(&ev.thread) {
                    pend.retain(|&m| m != ev.monitor);
                }
            }
            EventKind::Release | EventKind::Rollback { .. } => {
                if let EventKind::Rollback { entries, duration } = ev.kind {
                    let start = unit.to_micros(ev.ts.saturating_sub(duration));
                    let dur = unit.to_micros(ev.ts) - start;
                    emit(
                        w,
                        format!(
                            "{{\"name\":\"rollback\",\"cat\":\"revocation\",\"ph\":\"X\",\
                             \"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\
                             \"args\":{{\"entries\":{}}}}}",
                            ev.thread, start, dur, entries
                        ),
                    )?;
                }
                // Close spans down to (and including) this monitor so
                // B/E stay properly nested even if inner sections were
                // torn down by an unwind.
                let mut closed = false;
                if let Some(stack) = held.get_mut(&ev.thread) {
                    if stack.contains(&ev.monitor) {
                        closed = true;
                        let rollback = matches!(ev.kind, EventKind::Rollback { .. });
                        while let Some(m) = stack.pop() {
                            let name = format!("monitor {m} held");
                            emit(w, span("E", &name, "monitor", ev.thread, us))?;
                            if rollback {
                                // The unwind will still emit a Release
                                // for each monitor closed here.
                                unwound.entry(ev.thread).or_default().push(m);
                            }
                            if m == ev.monitor {
                                break;
                            }
                        }
                    }
                }
                if !closed {
                    let expected = unwound
                        .get_mut(&ev.thread)
                        .map(|pend| {
                            let before = pend.len();
                            pend.retain(|&m| m != ev.monitor);
                            pend.len() < before
                        })
                        .unwrap_or(false);
                    if !expected {
                        // E with no B: the opening Acquire was dropped.
                        repairs += 1;
                    }
                }
            }
            _ => {
                let args = kind_extras(&ev.kind);
                let args_obj = if args.is_empty() {
                    format!("{{\"monitor\":{}}}", ev.monitor)
                } else {
                    format!("{{\"monitor\":{}{args}}}", ev.monitor)
                };
                emit(
                    w,
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"monitor\",\"ph\":\"i\",\"s\":\"t\",\
                         \"pid\":1,\"tid\":{},\"ts\":{:.3},\"args\":{}}}",
                        ev.kind.name(),
                        ev.thread,
                        us,
                        args_obj
                    ),
                )?;
            }
        }
    }

    // Balance anything still open at the end of the stream.
    let end_us = unit.to_micros(last_ts);
    for (thread, monitor) in blocked {
        let name = format!("blocked: monitor {monitor}");
        emit(w, span("E", &name, "blocking", thread, end_us))?;
    }
    for (thread, stack) in held {
        for m in stack.into_iter().rev() {
            let name = format!("monitor {m} held");
            emit(w, span("E", &name, "monitor", thread, end_us))?;
        }
    }
    writeln!(w, "\n]}}")?;
    Ok(repairs)
}

fn hist_json(name: &str, h: &crate::hist::Histogram) -> String {
    format!(
        "    \"{}\": {{\"count\":{},\"mean\":{:.3},\"p50\":{},\"p90\":{},\"p99\":{},\
         \"min\":{},\"max\":{}}}",
        esc(name),
        h.count(),
        h.mean(),
        h.percentile(50.0),
        h.percentile(90.0),
        h.percentile(99.0),
        h.min(),
        h.max()
    )
}

/// Render counters and histogram percentiles as one JSON document (the
/// CLI's `--metrics-json` payload).
pub fn metrics_json(counters: &[(&str, u64)], hists: &Histograms, unit: TsUnit) -> String {
    metrics_json_with(counters, hists, unit, None)
}

/// [`metrics_json`] with an optional `"revocation_phases_ns"` section
/// from the slow-path [`PhaseTimers`](crate::PhaseTimers) (always in
/// wall nanoseconds regardless of `ts_unit` — see the
/// [`prof`](crate::prof) module docs).
pub fn metrics_json_with(
    counters: &[(&str, u64)],
    hists: &Histograms,
    unit: TsUnit,
    phases: Option<&crate::prof::PhaseTimers>,
) -> String {
    let mut out = String::from("{\n  \"counters\": {\n");
    for (i, (name, v)) in counters.iter().enumerate() {
        let comma = if i + 1 < counters.len() { "," } else { "" };
        out.push_str(&format!("    \"{}\": {}{}\n", esc(name), v, comma));
    }
    out.push_str("  },\n");
    out.push_str(&format!("  \"ts_unit\": \"{}\",\n", unit.suffix()));
    if let Some(t) = phases {
        out.push_str(&format!("  \"revocation_phases_ns\": {},\n", t.json()));
    }
    out.push_str("  \"histograms\": {\n");
    let mut rows = Vec::new();
    hists.for_each(|name, h| rows.push(hist_json(name, h)));
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  }\n}\n");
    out
}

/// Write the human-readable summary table: per-histogram count, mean,
/// p50/p90/p99, max.
pub fn write_summary<W: Write>(
    w: &mut W,
    hists: &Histograms,
    unit: TsUnit,
    recorded: u64,
    dropped: u64,
) -> io::Result<()> {
    writeln!(w, "events: {recorded} recorded, {dropped} dropped (ring overflow)")?;
    writeln!(
        w,
        "{:<22} {:>8} {:>12} {:>10} {:>10} {:>10} {:>10}  unit",
        "histogram", "count", "mean", "p50", "p90", "p99", "max"
    )?;
    let mut err = None;
    hists.for_each(|name, h| {
        if err.is_some() {
            return;
        }
        if let Err(e) = writeln!(
            w,
            "{:<22} {:>8} {:>12.1} {:>10} {:>10} {:>10} {:>10}  {}",
            name,
            h.count(),
            h.mean(),
            h.percentile(50.0),
            h.percentile(90.0),
            h.percentile(99.0),
            h.max(),
            unit.suffix()
        ) {
            err = Some(e);
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, thread: u64, monitor: u64, kind: EventKind) -> Event {
        Event { ts, thread, monitor, kind }
    }

    fn inversion_scenario() -> Vec<Event> {
        vec![
            ev(10, 1, 7, EventKind::Acquire),
            ev(20, 2, 7, EventKind::Block),
            ev(22, 1, 7, EventKind::RevokeRequest { by: 2 }),
            ev(30, 1, 7, EventKind::Rollback { entries: 4, duration: 6 }),
            ev(31, 2, 7, EventKind::Acquire),
            ev(40, 2, 7, EventKind::Commit),
            ev(40, 2, 7, EventKind::Release),
        ]
    }

    #[test]
    fn jsonl_emits_one_parsable_line_per_event() {
        let mut buf = Vec::new();
        write_events_jsonl(&mut buf, &inversion_scenario()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 7);
        assert!(lines[0].starts_with("{\"ts\":10,\"thread\":1,\"monitor\":7,"));
        assert!(lines[2].contains("\"kind\":\"RevokeRequest\""));
        assert!(lines[2].contains("\"by\":2"));
        assert!(lines[3].contains("\"entries\":4,\"duration\":6"));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "bad line {line}");
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
    }

    #[test]
    fn chrome_trace_balances_spans() {
        let mut buf = Vec::new();
        let repairs =
            write_chrome_trace(&mut buf, &inversion_scenario(), TsUnit::VirtualTicks).unwrap();
        assert_eq!(repairs, 0, "clean trace needed repairs");
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.trim_end().ends_with("]}"));
        let b = text.matches("\"ph\":\"B\"").count();
        let e = text.matches("\"ph\":\"E\"").count();
        assert_eq!(b, e, "unbalanced spans in {text}");
        assert!(text.contains("\"ph\":\"X\"")); // rollback
        assert!(text.contains("\"ph\":\"i\"")); // revoke-request instant
                                                // Thread 1's span is closed by the rollback, not a release.
        assert!(text.contains("monitor 7 held"));
    }

    #[test]
    fn chrome_trace_closes_dangling_spans_at_end() {
        let events = vec![ev(5, 1, 3, EventKind::Acquire), ev(9, 2, 3, EventKind::Block)];
        let mut buf = Vec::new();
        let repairs = write_chrome_trace(&mut buf, &events, TsUnit::WallNanos).unwrap();
        // EOF balancing is normal truncation, not damage.
        assert_eq!(repairs, 0);
        let text = String::from_utf8(buf).unwrap();
        let b = text.matches("\"ph\":\"B\"").count();
        let e = text.matches("\"ph\":\"E\"").count();
        assert_eq!(b, 2);
        assert_eq!(b, e);
    }

    #[test]
    fn chrome_trace_repairs_mid_stream_tears() {
        // Ring overflow dropped events: thread 1's Acquire(3) vanished
        // between its Block(3) and Block(5) (orphan blocked-B), thread
        // 2's Acquire(5) vanished before its Release(5) (E with no B).
        let events = vec![
            ev(10, 1, 3, EventKind::Block),
            ev(20, 1, 5, EventKind::Block),
            ev(25, 1, 5, EventKind::Acquire),
            ev(30, 2, 5, EventKind::Release),
            ev(40, 1, 5, EventKind::Release),
        ];
        let mut buf = Vec::new();
        let repairs = write_chrome_trace(&mut buf, &events, TsUnit::VirtualTicks).unwrap();
        assert_eq!(repairs, 2, "expected one synthesized E and one skipped orphan");
        let text = String::from_utf8(buf).unwrap();
        let b = text.matches("\"ph\":\"B\"").count();
        let e = text.matches("\"ph\":\"E\"").count();
        assert_eq!(b, e, "repaired trace still unbalanced: {text}");
    }

    #[test]
    fn chrome_trace_rollback_unwind_releases_are_not_orphans() {
        // The VM emits Rollback first, then a Release per unwound
        // monitor; those Releases must not count as repairs.
        let events = vec![
            ev(10, 1, 3, EventKind::Acquire),
            ev(12, 1, 5, EventKind::Acquire),
            ev(20, 1, 3, EventKind::Rollback { entries: 2, duration: 4 }),
            ev(21, 1, 5, EventKind::Release),
            ev(22, 1, 3, EventKind::Release),
        ];
        let mut buf = Vec::new();
        let repairs = write_chrome_trace(&mut buf, &events, TsUnit::VirtualTicks).unwrap();
        assert_eq!(repairs, 0, "unwind releases misread as orphans");
        let text = String::from_utf8(buf).unwrap();
        let b = text.matches("\"ph\":\"B\"").count();
        let e = text.matches("\"ph\":\"E\"").count();
        assert_eq!(b, e);
    }

    #[test]
    fn trace_jsonl_has_meta_header_and_names() {
        let mut names = std::collections::BTreeMap::new();
        names.insert(7u64, "queue".to_string());
        let mut buf = Vec::new();
        write_trace_jsonl(&mut buf, &inversion_scenario(), TsUnit::VirtualTicks, &names).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2 + 7);
        assert_eq!(lines[0], "{\"meta\":\"trace\",\"ts_unit\":\"ticks\",\"version\":1}");
        assert_eq!(lines[1], "{\"meta\":\"monitor_name\",\"monitor\":7,\"name\":\"queue\"}");
        assert!(lines[2].starts_with("{\"ts\":10,"));
    }

    #[test]
    fn run_meta_header_carries_context_and_empty_meta_is_identity() {
        let names = std::collections::BTreeMap::new();
        let meta = RunMeta {
            recorded: Some(120),
            dropped: Some(8),
            governor: Some((3, 500, 2000)),
            scheduler: Some("priority".into()),
        };
        let mut buf = Vec::new();
        write_trace_jsonl_with(&mut buf, &[], TsUnit::WallNanos, &names, &meta).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(
            text.lines().next().unwrap(),
            "{\"meta\":\"trace\",\"ts_unit\":\"ns\",\"version\":1,\"recorded\":120,\
             \"dropped\":8,\"governor_k\":3,\"governor_backoff\":500,\"governor_decay\":2000,\
             \"scheduler\":\"priority\"}"
        );

        // Empty meta must keep the legacy header byte-identical.
        let mut legacy = Vec::new();
        write_trace_jsonl(&mut legacy, &inversion_scenario(), TsUnit::VirtualTicks, &names)
            .unwrap();
        let mut with = Vec::new();
        write_trace_jsonl_with(
            &mut with,
            &inversion_scenario(),
            TsUnit::VirtualTicks,
            &names,
            &RunMeta::default(),
        )
        .unwrap();
        assert_eq!(legacy, with);
        assert!(RunMeta::default().is_empty());
        assert!(!meta.is_empty());
    }

    #[test]
    fn metrics_json_with_embeds_phase_timers() {
        let hists = Histograms::default();
        let timers = crate::prof::PhaseTimers::new();
        timers.record(crate::prof::Phase::UndoWalk, 1500);
        let json = metrics_json_with(&[("acquires", 1)], &hists, TsUnit::WallNanos, Some(&timers));
        assert!(json.contains("\"revocation_phases_ns\""));
        assert!(json.contains("\"undo-walk\": {\"count\": 1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // And the phase-less form stays phase-free.
        assert!(!metrics_json(&[], &hists, TsUnit::WallNanos).contains("revocation_phases_ns"));
    }

    #[test]
    fn metrics_json_contains_counters_and_percentiles() {
        let hists = Histograms::default();
        hists.entry_blocking.record(10);
        hists.rollback_duration.record(6);
        let json = metrics_json(&[("acquires", 3), ("rollbacks", 1)], &hists, TsUnit::VirtualTicks);
        assert!(json.contains("\"acquires\": 3"));
        assert!(json.contains("\"rollbacks\": 1"));
        assert!(json.contains("\"entry_blocking\""));
        assert!(json.contains("\"rollback_duration\""));
        assert!(json.contains("\"p50\""));
        assert!(json.contains("\"p99\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn summary_lists_all_histograms() {
        let hists = Histograms::default();
        hists.section_length.record(100);
        let mut buf = Vec::new();
        write_summary(&mut buf, &hists, TsUnit::WallNanos, 12, 0).unwrap();
        let text = String::from_utf8(buf).unwrap();
        for name in
            ["entry_blocking", "section_length", "rollback_duration", "inversion_resolution"]
        {
            assert!(text.contains(name), "missing {name} in {text}");
        }
        assert!(text.contains("12 recorded"));
    }
}
