//! The runtime-agnostic structured event model.
//!
//! Both runtimes reduce their monitor activity to the same small event
//! vocabulary: the VM's `TraceEvent` variants map 1:1 onto
//! [`EventKind`], and the real-thread library emits the same kinds from
//! its instrumentation points. Thread and monitor identifiers are plain
//! `u64`s so the layer carries no dependency on either runtime's types.

/// What happened. Mirrors the VM's trace vocabulary, with payloads the
/// exporters and latency derivation need.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Thread acquired the monitor (uncontended, handed off, or
    /// recursive re-entry).
    Acquire,
    /// Thread blocked on the monitor's entry queue.
    Block,
    /// A higher-priority contender flagged the holder for revocation.
    RevokeRequest {
        /// Requesting (high-priority) thread.
        by: u64,
    },
    /// A synchronized section was rolled back.
    Rollback {
        /// Undo-log entries restored.
        entries: u64,
        /// How long the rollback took, in the producer's clock units
        /// (virtual ticks in the VM, wall-clock nanoseconds in the
        /// locks runtime).
        duration: u64,
    },
    /// A section committed (outermost exit retired the undo log).
    Commit,
    /// Thread fully released the monitor (recursion count hit zero).
    Release,
    /// The section was marked non-revocable (JMM guard, native call,
    /// nested wait).
    NonRevocable,
    /// A deadlock cycle was detected.
    DeadlockDetected {
        /// Number of threads in the cycle.
        cycle_len: u64,
    },
    /// A deadlock was broken by revoking the event's thread.
    DeadlockBroken,
    /// An inversion was detected but could not be resolved (the holder
    /// is non-revocable).
    InversionUnresolved {
        /// High-priority requester.
        by: u64,
    },
    /// The revocation governor denied a revocation of the event's
    /// thread (the holder): its retry budget on this monitor is spent,
    /// so the contender blocks on the prioritized queue instead.
    GovernorThrottle {
        /// High-priority contender that was throttled.
        by: u64,
    },
    /// The governor opened a fresh fallback-to-blocking window for this
    /// monitor (per-monitor degradation to the blocking baseline).
    PolicyFallback,
}

impl EventKind {
    /// Stable name used by every exporter.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Acquire => "Acquire",
            EventKind::Block => "Block",
            EventKind::RevokeRequest { .. } => "RevokeRequest",
            EventKind::Rollback { .. } => "Rollback",
            EventKind::Commit => "Commit",
            EventKind::Release => "Release",
            EventKind::NonRevocable => "NonRevocable",
            EventKind::DeadlockDetected { .. } => "DeadlockDetected",
            EventKind::DeadlockBroken => "DeadlockBroken",
            EventKind::InversionUnresolved { .. } => "InversionUnresolved",
            EventKind::GovernorThrottle { .. } => "GovernorThrottle",
            EventKind::PolicyFallback => "PolicyFallback",
        }
    }
}

/// One timestamped monitor event.
///
/// `thread` is the primary actor: the acquirer/blocker/releaser, the
/// flagged holder for [`EventKind::RevokeRequest`] and
/// [`EventKind::InversionUnresolved`], the victim for
/// [`EventKind::DeadlockBroken`]. Events without a natural monitor
/// (deadlock detection) use [`Event::NO_MONITOR`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Timestamp in the producing runtime's clock units (virtual ticks
    /// for the VM, monotonic wall-clock nanoseconds for the locks
    /// runtime — see `TsUnit` on the sink).
    pub ts: u64,
    /// Primary thread of the event.
    pub thread: u64,
    /// Monitor involved, or [`Event::NO_MONITOR`].
    pub monitor: u64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Sentinel monitor id for events not tied to one monitor.
    pub const NO_MONITOR: u64 = u64::MAX;
    /// Sentinel thread id for events not attributable to one thread
    /// (e.g. deadlock detection performed by the runtime itself).
    pub const NO_THREAD: u64 = u64::MAX;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(EventKind::Acquire.name(), "Acquire");
        assert_eq!(EventKind::RevokeRequest { by: 3 }.name(), "RevokeRequest");
        assert_eq!(EventKind::Rollback { entries: 1, duration: 2 }.name(), "Rollback");
    }
}
