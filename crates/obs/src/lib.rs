//! `revmon-obs`: unified event tracing and metrics export for both
//! revmon runtimes.
//!
//! The deterministic VM (`revmon-vm`) and the real-thread library
//! (`revmon-locks`) each observe the same conceptual monitor events —
//! acquire, block, revoke-request, rollback, commit, release — but
//! historically exposed them through different mechanisms (an in-VM
//! trace vector vs. per-monitor atomic counters). This crate gives both
//! a single structured pipeline:
//!
//! * [`Event`] / [`EventKind`] — the runtime-agnostic event model; the
//!   VM's virtual clock and the locks runtime's monotonic wall clock
//!   both fit the `u64` timestamp (the sink's [`TsUnit`] says which).
//! * [`EventSink`] — sharded bounded ring buffers plus online latency
//!   derivation ([`Histograms`]): entry-queue blocking time, section
//!   length, rollback duration, and inversion-resolution latency
//!   (revoke request → high-priority acquire), each in an HDR-style
//!   log-linear [`Histogram`] with fixed memory and an allocation-free
//!   record path. A disabled sink costs one relaxed atomic load per
//!   event site.
//! * exporters — [`write_events_jsonl`] (JSON Lines),
//!   [`write_chrome_trace`] (Chrome `trace_event`, loadable in Perfetto
//!   or `chrome://tracing`), [`write_summary`] (p50/p90/p99/max text
//!   table), and [`metrics_json`] (counters + percentiles as JSON).
//!
//! See `docs/observability.md` for the end-to-end guide.

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod event;
mod export;
mod hist;
mod latency;
mod ring;
mod sink;

pub use event::{Event, EventKind};
pub use export::{metrics_json, write_chrome_trace, write_events_jsonl, write_summary};
pub use hist::Histogram;
pub use latency::{Histograms, LatencyTracker};
pub use ring::EventRing;
pub use sink::{EventSink, TsUnit};
