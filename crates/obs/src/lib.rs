//! `revmon-obs`: unified event tracing and metrics export for both
//! revmon runtimes.
//!
//! The deterministic VM (`revmon-vm`) and the real-thread library
//! (`revmon-locks`) each observe the same conceptual monitor events —
//! acquire, block, revoke-request, rollback, commit, release — but
//! historically exposed them through different mechanisms (an in-VM
//! trace vector vs. per-monitor atomic counters). This crate gives both
//! a single structured pipeline:
//!
//! * [`Event`] / [`EventKind`] — the runtime-agnostic event model; the
//!   VM's virtual clock and the locks runtime's monotonic wall clock
//!   both fit the `u64` timestamp (the sink's [`TsUnit`] says which).
//! * [`EventSink`] — sharded bounded ring buffers plus online latency
//!   derivation ([`Histograms`]): entry-queue blocking time, section
//!   length, rollback duration, and inversion-resolution latency
//!   (revoke request → high-priority acquire), each in an HDR-style
//!   log-linear [`Histogram`] with fixed memory and an allocation-free
//!   record path. A disabled sink costs one relaxed atomic load per
//!   event site.
//! * exporters — [`write_events_jsonl`] (JSON Lines),
//!   [`write_trace_jsonl`] (JSON Lines with a meta header + monitor
//!   name table, the `revmon analyze` interchange format),
//!   [`write_chrome_trace`] (Chrome `trace_event`, loadable in Perfetto
//!   or `chrome://tracing`; repairs and counts spans torn by ring
//!   overflow), [`write_summary`] (p50/p90/p99/max text table), and
//!   [`metrics_json`] (counters + percentiles as JSON).
//! * `revmon-analyze` — [`import_trace_jsonl`] (lossy-stream-tolerant
//!   importer), [`reconstruct_episodes`] (priority-inversion episodes
//!   classified by [`Resolution`], with inversion latency and
//!   wasted-work accounting), and [`Analysis`] (episodes + per-monitor
//!   contention profiles, rendered by [`write_report`],
//!   [`analysis_json`], and [`write_prometheus`]).
//!
//! * profiling ([`prof`]) — always-on slow-path phase timers
//!   ([`PhaseTimers`]), wait-for graph snapshots ([`GraphSnapshot`],
//!   DOT + JSON), per-episode critical paths ([`CriticalPath`]), and
//!   contention flamegraph export ([`FoldedStacks`], brendangregg
//!   folded format).
//!
//! See `docs/observability.md`, `docs/analysis.md`, and
//! `docs/profiling.md` for the end-to-end guides.

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod analyze;
mod episode;
mod event;
mod export;
mod flame;
mod graph;
mod hist;
mod import;
mod latency;
pub mod prof;
mod ring;
mod sink;

pub use analyze::{
    analysis_json, monitor_label, write_prometheus, write_report, Analysis, ExactStats,
    MonitorProfile,
};
pub use episode::{reconstruct_episodes, CriticalPath, Episode, EpisodeBuilder, Resolution};
pub use event::{Event, EventKind};
pub use export::{
    metrics_json, metrics_json_with, write_chrome_trace, write_events_jsonl, write_summary,
    write_trace_jsonl, write_trace_jsonl_with, RunMeta,
};
pub use flame::FoldedStacks;
pub use graph::{GraphEdge, GraphSnapshot};
pub use hist::Histogram;
pub use import::{import_trace_jsonl, ImportWarnings, TraceImport};
pub use latency::{Histograms, LatencyTracker};
pub use prof::{Phase, PhaseTimers};
pub use ring::EventRing;
pub use sink::{EventSink, TsUnit};
