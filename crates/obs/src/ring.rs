//! Bounded event ring buffer.
//!
//! Each sink shard owns one ring. Capacity is fixed at construction;
//! recording never allocates after that, and when the ring is full the
//! oldest event is overwritten (the sink counts the overwrites).

use crate::event::Event;

/// Fixed-capacity ring of `(sequence, event)` pairs, overwriting the
/// oldest entry when full.
#[derive(Debug)]
pub struct EventRing {
    buf: Vec<(u64, Event)>,
    cap: usize,
    /// Index of the oldest entry once the ring has wrapped.
    head: usize,
    overwritten: u64,
}

impl EventRing {
    /// Ring holding at most `cap` events (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        EventRing { buf: Vec::with_capacity(cap), cap, head: 0, overwritten: 0 }
    }

    /// Append, overwriting the oldest event if full. Returns `true` if
    /// an old event was lost.
    pub fn push(&mut self, seq: u64, ev: Event) -> bool {
        if self.buf.len() < self.cap {
            self.buf.push((seq, ev));
            false
        } else {
            self.buf[self.head] = (seq, ev);
            self.head = (self.head + 1) % self.cap;
            self.overwritten += 1;
            true
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// How many events have been overwritten since the last drain.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Remove and return all held events, oldest first.
    pub fn drain(&mut self) -> Vec<(u64, Event)> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        self.buf.clear();
        self.head = 0;
        self.overwritten = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(ts: u64) -> Event {
        Event { ts, thread: 1, monitor: 1, kind: EventKind::Acquire }
    }

    #[test]
    fn push_below_capacity_keeps_order() {
        let mut r = EventRing::new(4);
        for i in 0..3 {
            assert!(!r.push(i, ev(i)));
        }
        let drained = r.drain();
        assert_eq!(drained.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(r.is_empty());
    }

    #[test]
    fn wraparound_drops_oldest_and_counts() {
        let mut r = EventRing::new(3);
        for i in 0..5 {
            r.push(i, ev(i));
        }
        assert_eq!(r.overwritten(), 2);
        assert_eq!(r.len(), 3);
        let drained = r.drain();
        assert_eq!(drained.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(r.overwritten(), 0);
    }
}
