//! `revmon-analyze`: turn an event stream into answers.
//!
//! [`Analysis::from_events`] makes one pass over a trace and produces:
//!
//! * the reconstructed [`Episode`]s (see [`crate::episode`]) with
//!   per-resolution counts and exact inversion-latency statistics
//!   (episodes are few; latencies are kept exactly rather than
//!   histogram-quantized, so reports are byte-stable);
//! * **per-monitor contention profiles** ([`MonitorProfile`]): keyed
//!   event counters plus blocking-time and held-time histograms, sorted
//!   by blocking time so the worst offender tops every report;
//! * stream totals and a damage-aware event census.
//!
//! Three renderers share the result: [`write_report`] (human text),
//! [`analysis_json`] (machine JSON), and [`write_prometheus`]
//! (Prometheus text exposition format, for scraping live processes or
//! pushing post-hoc). All three take the monitor-name table from the
//! trace (or the runtimes' naming APIs) so output reads
//! `monitor "queue"`, not `monitor 3`.

use std::collections::BTreeMap;
use std::io::{self, Write};

use crate::episode::{reconstruct_episodes, Episode, Resolution};
use crate::event::{Event, EventKind};
use crate::export::esc;
use crate::hist::Histogram;
use crate::sink::TsUnit;

/// Per-monitor contention profile.
pub struct MonitorProfile {
    /// Monitor id.
    pub monitor: u64,
    /// Acquisitions (including recursive re-entries and handoffs).
    pub acquires: u64,
    /// Entry-queue blocking episodes.
    pub blocks: u64,
    /// Revocations requested against holders of this monitor.
    pub revoke_requests: u64,
    /// Rollbacks performed on this monitor.
    pub rollbacks: u64,
    /// Sections committed.
    pub commits: u64,
    /// Inversions flagged unresolvable (non-revocable holder).
    pub unresolved: u64,
    /// Revocations denied by the governor's retry budget.
    pub governor_throttles: u64,
    /// Fresh fallback-to-blocking windows the governor opened here.
    pub policy_fallbacks: u64,
    /// Undo entries restored by this monitor's rollbacks.
    pub wasted_entries: u64,
    /// Total clock units threads spent blocked on the entry queue.
    pub total_blocked: u64,
    /// Blocking-time distribution (Block → same thread's Acquire).
    pub blocking: Histogram,
    /// Held-time distribution (outermost Acquire → Release).
    pub held: Histogram,
}

impl MonitorProfile {
    fn new(monitor: u64) -> Self {
        MonitorProfile {
            monitor,
            acquires: 0,
            blocks: 0,
            revoke_requests: 0,
            rollbacks: 0,
            commits: 0,
            unresolved: 0,
            governor_throttles: 0,
            policy_fallbacks: 0,
            wasted_entries: 0,
            total_blocked: 0,
            blocking: Histogram::new(),
            held: Histogram::new(),
        }
    }
}

/// Exact statistics over a small set of values (episode latencies).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExactStats {
    values: Vec<u64>, // kept sorted
}

impl ExactStats {
    fn push(&mut self, v: u64) {
        let at = self.values.partition_point(|&x| x <= v);
        self.values.insert(at, v);
    }

    /// Number of values.
    pub fn count(&self) -> u64 {
        self.values.len() as u64
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<u64>() as f64 / self.values.len() as f64
        }
    }

    /// Exact nearest-rank percentile (0 when empty).
    pub fn percentile(&self, p: f64) -> u64 {
        if self.values.is_empty() {
            return 0;
        }
        let rank = ((p / 100.0) * self.values.len() as f64).ceil().max(1.0) as usize;
        self.values[rank.min(self.values.len()) - 1]
    }

    /// Largest value (0 when empty).
    pub fn max(&self) -> u64 {
        self.values.last().copied().unwrap_or(0)
    }
}

/// The complete analysis of one trace.
pub struct Analysis {
    /// Reconstructed episodes, ordered by start time.
    pub episodes: Vec<Episode>,
    /// Per-monitor profiles, sorted by total blocking time (descending;
    /// monitor id breaks ties) — Brandenburg's blocking-time-per-resource
    /// ordering.
    pub profiles: Vec<MonitorProfile>,
    /// Event census by kind name, in alphabetical (`BTreeMap`) order.
    pub kind_counts: BTreeMap<&'static str, u64>,
    /// Total events analyzed.
    pub events: u64,
    /// Last timestamp seen (stream length in clock units).
    pub last_ts: u64,
    /// Exact inversion-latency stats over resolved episodes.
    pub inversion_latency: ExactStats,
    /// Total undo entries rolled back across all episodes.
    pub wasted_entries: u64,
    /// Total discarded section time across all episodes.
    pub wasted_time: u64,
    /// Revocations the governor denied across all episodes.
    pub governor_throttles: u64,
    /// Fallback-to-blocking windows the governor opened.
    pub policy_fallbacks: u64,
    /// Trace lines the importer skipped (damage on disk). Nonzero means
    /// `unresolved` verdicts may be truncation artifacts — see
    /// [`Analysis::mark_truncated`].
    pub skipped_lines: u64,
}

impl Analysis {
    /// One pass: episodes + profiles + census.
    pub fn from_events(events: &[Event]) -> Analysis {
        let mut profiles: BTreeMap<u64, MonitorProfile> = BTreeMap::new();
        let mut kind_counts: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut block_since: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        let mut section_since: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        let mut last_ts = 0u64;

        for ev in events {
            *kind_counts.entry(ev.kind.name()).or_insert(0) += 1;
            last_ts = last_ts.max(ev.ts);
            if ev.monitor == Event::NO_MONITOR {
                continue;
            }
            let p = profiles.entry(ev.monitor).or_insert_with(|| MonitorProfile::new(ev.monitor));
            let key = (ev.thread, ev.monitor);
            match ev.kind {
                EventKind::Acquire => {
                    p.acquires += 1;
                    if let Some(t0) = block_since.remove(&key) {
                        let waited = ev.ts.saturating_sub(t0);
                        p.total_blocked += waited;
                        p.blocking.record(waited);
                    }
                    section_since.entry(key).or_insert(ev.ts);
                }
                EventKind::Block => {
                    p.blocks += 1;
                    block_since.entry(key).or_insert(ev.ts);
                }
                EventKind::RevokeRequest { .. } => p.revoke_requests += 1,
                EventKind::Rollback { entries, .. } => {
                    p.rollbacks += 1;
                    p.wasted_entries += entries;
                    section_since.remove(&key);
                }
                EventKind::Commit => p.commits += 1,
                EventKind::Release => {
                    if let Some(t0) = section_since.remove(&key) {
                        p.held.record(ev.ts.saturating_sub(t0));
                    }
                }
                EventKind::InversionUnresolved { .. } => p.unresolved += 1,
                EventKind::GovernorThrottle { .. } => p.governor_throttles += 1,
                EventKind::PolicyFallback => p.policy_fallbacks += 1,
                EventKind::NonRevocable
                | EventKind::DeadlockDetected { .. }
                | EventKind::DeadlockBroken => {}
            }
        }

        let episodes = reconstruct_episodes(events);
        let mut inversion_latency = ExactStats::default();
        let mut wasted_entries = 0;
        let mut wasted_time = 0;
        let mut governor_throttles = 0;
        let mut policy_fallbacks = 0;
        for e in &episodes {
            if let Some(l) = e.latency() {
                inversion_latency.push(l);
            }
            wasted_entries += e.wasted_entries;
            wasted_time += e.wasted_time;
            governor_throttles += e.governor_throttles;
            policy_fallbacks += e.policy_fallbacks;
        }

        let mut profiles: Vec<MonitorProfile> = profiles.into_values().collect();
        profiles.sort_by_key(|p| (std::cmp::Reverse(p.total_blocked), p.monitor));

        Analysis {
            episodes,
            profiles,
            kind_counts,
            events: events.len() as u64,
            last_ts,
            inversion_latency,
            wasted_entries,
            wasted_time,
            governor_throttles,
            policy_fallbacks,
            skipped_lines: 0,
        }
    }

    /// Reclassify truncation artifacts after a damaged import.
    ///
    /// An episode whose holder or requester lost events to skipped trace
    /// lines (`damaged` pairs from `TraceImport`) and ended `Unresolved`
    /// is not evidence of an unresolvable inversion — the resolving
    /// events may simply be missing. Flip those verdicts to
    /// [`Resolution::Truncated`] so damage reads as damage, not as a
    /// protocol failure. `skipped_lines` is surfaced in every renderer.
    pub fn mark_truncated(
        &mut self,
        damaged: &std::collections::BTreeSet<(u64, u64)>,
        skipped_lines: u64,
    ) {
        self.skipped_lines = skipped_lines;
        if damaged.is_empty() {
            return;
        }
        for e in &mut self.episodes {
            if e.resolution == Resolution::Unresolved
                && (damaged.contains(&(e.holder, e.monitor))
                    || damaged.contains(&(e.requester, e.monitor)))
            {
                e.resolution = Resolution::Truncated;
            }
        }
    }

    /// Episode count per resolution, in [`Resolution::ALL`] order.
    pub fn resolution_counts(&self) -> [(Resolution, u64); 5] {
        Resolution::ALL
            .map(|r| (r, self.episodes.iter().filter(|e| e.resolution == r).count() as u64))
    }

    /// Count of episodes resolved by revocation (the paper's headline).
    pub fn revocation_episodes(&self) -> u64 {
        self.episodes.iter().filter(|e| e.resolution == Resolution::Revocation).count() as u64
    }
}

/// Render a monitor id through the name table: `"queue"` when named,
/// `#3` otherwise.
pub fn monitor_label(names: &BTreeMap<u64, String>, monitor: u64) -> String {
    match names.get(&monitor) {
        Some(n) => format!("\"{n}\""),
        None => format!("#{monitor}"),
    }
}

/// Write the human-readable analysis report.
pub fn write_report<W: Write>(
    w: &mut W,
    a: &Analysis,
    names: &BTreeMap<u64, String>,
    unit: TsUnit,
) -> io::Result<()> {
    let u = unit.suffix();
    writeln!(w, "trace: {} events over {} {u}", a.events, a.last_ts)?;
    let census: Vec<String> = a.kind_counts.iter().map(|(k, n)| format!("{n} {k}")).collect();
    writeln!(w, "  {}", census.join(", "))?;
    if a.skipped_lines > 0 {
        writeln!(
            w,
            "  damage: {} skipped lines — unresolved verdicts on damaged pairs \
             reported as truncated",
            a.skipped_lines
        )?;
    }

    writeln!(w, "\ninversion episodes: {}", a.episodes.len())?;
    for (r, n) in a.resolution_counts() {
        if n > 0 {
            writeln!(w, "  {:<16} {n}", r.name())?;
        }
    }
    if a.inversion_latency.count() > 0 {
        writeln!(
            w,
            "  latency ({u}): mean {:.1}, p50 {}, p99 {}, max {}",
            a.inversion_latency.mean(),
            a.inversion_latency.percentile(50.0),
            a.inversion_latency.percentile(99.0),
            a.inversion_latency.max(),
        )?;
    }
    writeln!(
        w,
        "  wasted work: {} undo entries rolled back, {} {u} of discarded section time",
        a.wasted_entries, a.wasted_time
    )?;
    let worst_repeat = a.episodes.iter().map(|e| e.revoke_requests).max().unwrap_or(0);
    if worst_repeat > 1 {
        writeln!(w, "  livelock signal: an episode needed {worst_repeat} revoke requests")?;
    }
    if a.governor_throttles > 0 || a.policy_fallbacks > 0 {
        writeln!(
            w,
            "  governed: {} revocations throttled, {} fallback windows opened",
            a.governor_throttles, a.policy_fallbacks
        )?;
    }

    for e in &a.episodes {
        let end = match e.end {
            Some(t) => format!("{t}"),
            None => "-".into(),
        };
        let lat = match e.latency() {
            Some(l) => format!("{l} {u}"),
            None => "unresolved".into(),
        };
        let requester =
            if e.requester == Event::NO_THREAD { "?".into() } else { format!("t{}", e.requester) };
        let governed = if e.governor_throttles > 0 || e.policy_fallbacks > 0 {
            format!(
                ", governed ({} throttled, {} fallbacks)",
                e.governor_throttles, e.policy_fallbacks
            )
        } else {
            String::new()
        };
        writeln!(
            w,
            "  [{:>8}..{:>8}] monitor {:<12} {:<16} {requester} vs t{}: latency {lat}, \
             {} rollbacks, {} undo entries, {} {u} wasted{governed}",
            e.start,
            end,
            monitor_label(names, e.monitor),
            e.resolution.name(),
            e.holder,
            e.rollbacks,
            e.wasted_entries,
            e.wasted_time,
        )?;
    }

    writeln!(w, "\nper-monitor contention (by total blocking time):")?;
    writeln!(
        w,
        "  {:<14} {:>8} {:>8} {:>8} {:>9} {:>10} {:>10} {:>10}",
        "monitor", "acquires", "blocks", "revokes", "rollbacks", "blocked", "p99 block", "p99 held"
    )?;
    for p in &a.profiles {
        writeln!(
            w,
            "  {:<14} {:>8} {:>8} {:>8} {:>9} {:>10} {:>10} {:>10}",
            monitor_label(names, p.monitor),
            p.acquires,
            p.blocks,
            p.revoke_requests,
            p.rollbacks,
            p.total_blocked,
            p.blocking.percentile(99.0),
            p.held.percentile(99.0),
        )?;
    }
    Ok(())
}

/// Render the analysis as one JSON document.
pub fn analysis_json(a: &Analysis, names: &BTreeMap<u64, String>, unit: TsUnit) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"events\": {},\n", a.events));
    out.push_str(&format!("  \"ts_unit\": \"{}\",\n", unit.suffix()));
    out.push_str(&format!("  \"span\": {},\n", a.last_ts));
    out.push_str(&format!("  \"skipped_lines\": {},\n", a.skipped_lines));

    out.push_str("  \"kinds\": {");
    let census: Vec<String> = a.kind_counts.iter().map(|(k, n)| format!("\"{k}\": {n}")).collect();
    out.push_str(&census.join(", "));
    out.push_str("},\n");

    out.push_str("  \"episode_summary\": {\n");
    out.push_str(&format!("    \"count\": {},\n", a.episodes.len()));
    let res: Vec<String> =
        a.resolution_counts().iter().map(|(r, n)| format!("\"{}\": {n}", r.name())).collect();
    out.push_str(&format!("    \"resolutions\": {{{}}},\n", res.join(", ")));
    out.push_str(&format!(
        "    \"latency\": {{\"count\": {}, \"mean\": {:.3}, \"p50\": {}, \"p99\": {}, \"max\": {}}},\n",
        a.inversion_latency.count(),
        a.inversion_latency.mean(),
        a.inversion_latency.percentile(50.0),
        a.inversion_latency.percentile(99.0),
        a.inversion_latency.max(),
    ));
    out.push_str(&format!(
        "    \"wasted_entries\": {},\n    \"wasted_time\": {},\n",
        a.wasted_entries, a.wasted_time
    ));
    out.push_str(&format!(
        "    \"governor_throttles\": {},\n    \"policy_fallbacks\": {}\n  }},\n",
        a.governor_throttles, a.policy_fallbacks
    ));

    out.push_str("  \"episodes\": [\n");
    let eps: Vec<String> = a
        .episodes
        .iter()
        .map(|e| {
            let end = match e.end {
                Some(t) => t.to_string(),
                None => "null".into(),
            };
            let latency = match e.latency() {
                Some(l) => l.to_string(),
                None => "null".into(),
            };
            let requester = if e.requester == Event::NO_THREAD {
                "null".into()
            } else {
                e.requester.to_string()
            };
            let name = match names.get(&e.monitor) {
                Some(n) => format!("\"{}\"", esc(n)),
                None => "null".into(),
            };
            format!(
                "    {{\"monitor\": {}, \"monitor_name\": {name}, \"holder\": {}, \
                 \"requester\": {requester}, \"start\": {}, \"end\": {end}, \
                 \"resolution\": \"{}\", \"latency\": {latency}, \"rollbacks\": {}, \
                 \"wasted_entries\": {}, \"wasted_time\": {}, \"revoke_requests\": {}, \
                 \"governor_throttles\": {}, \"policy_fallbacks\": {}}}",
                e.monitor,
                e.holder,
                e.start,
                e.resolution.name(),
                e.rollbacks,
                e.wasted_entries,
                e.wasted_time,
                e.revoke_requests,
                e.governor_throttles,
                e.policy_fallbacks,
            )
        })
        .collect();
    out.push_str(&eps.join(",\n"));
    out.push_str("\n  ],\n");

    out.push_str("  \"monitors\": [\n");
    let mons: Vec<String> = a
        .profiles
        .iter()
        .map(|p| {
            let name = match names.get(&p.monitor) {
                Some(n) => format!("\"{}\"", esc(n)),
                None => "null".into(),
            };
            format!(
                "    {{\"monitor\": {}, \"name\": {name}, \"acquires\": {}, \"blocks\": {}, \
                 \"revoke_requests\": {}, \"rollbacks\": {}, \"commits\": {}, \
                 \"unresolved\": {}, \"wasted_entries\": {}, \"total_blocked\": {}, \
                 \"blocking_p50\": {}, \"blocking_p99\": {}, \"held_p50\": {}, \"held_p99\": {}}}",
                p.monitor,
                p.acquires,
                p.blocks,
                p.revoke_requests,
                p.rollbacks,
                p.commits,
                p.unresolved,
                p.wasted_entries,
                p.total_blocked,
                p.blocking.percentile(50.0),
                p.blocking.percentile(99.0),
                p.held.percentile(50.0),
                p.held.percentile(99.0),
            )
        })
        .collect();
    out.push_str(&mons.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Escape a Prometheus label value (backslash, quote, newline).
fn prom_esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn prom_monitor_label(names: &BTreeMap<u64, String>, monitor: u64) -> String {
    match names.get(&monitor) {
        Some(n) => prom_esc(n),
        None => format!("monitor-{monitor}"),
    }
}

/// Write the analysis in Prometheus text exposition format: episode and
/// wasted-work counters, inversion-latency quantiles, and per-monitor
/// contention series. Clock units ride in the metric names via the
/// unit's suffix (`ticks` / `ns`).
pub fn write_prometheus<W: Write>(
    w: &mut W,
    a: &Analysis,
    names: &BTreeMap<u64, String>,
    unit: TsUnit,
) -> io::Result<()> {
    let u = unit.suffix();
    writeln!(w, "# HELP revmon_events_total Events analyzed, by kind.")?;
    writeln!(w, "# TYPE revmon_events_total counter")?;
    for (k, n) in &a.kind_counts {
        writeln!(w, "revmon_events_total{{kind=\"{k}\"}} {n}")?;
    }

    writeln!(w, "# HELP revmon_episodes_total Priority-inversion episodes, by resolution.")?;
    writeln!(w, "# TYPE revmon_episodes_total counter")?;
    for (r, n) in a.resolution_counts() {
        writeln!(w, "revmon_episodes_total{{resolution=\"{}\"}} {n}", r.name())?;
    }

    writeln!(w, "# HELP revmon_inversion_latency_{u} Inversion latency of resolved episodes.")?;
    writeln!(w, "# TYPE revmon_inversion_latency_{u} summary")?;
    for (q, p) in [("0.5", 50.0), ("0.9", 90.0), ("0.99", 99.0)] {
        writeln!(
            w,
            "revmon_inversion_latency_{u}{{quantile=\"{q}\"}} {}",
            a.inversion_latency.percentile(p)
        )?;
    }
    writeln!(
        w,
        "revmon_inversion_latency_{u}_sum {}",
        (a.inversion_latency.mean() * a.inversion_latency.count() as f64).round() as u64
    )?;
    writeln!(w, "revmon_inversion_latency_{u}_count {}", a.inversion_latency.count())?;

    writeln!(w, "# HELP revmon_governor_throttles_total Revocations denied by the governor.")?;
    writeln!(w, "# TYPE revmon_governor_throttles_total counter")?;
    writeln!(w, "revmon_governor_throttles_total {}", a.governor_throttles)?;
    writeln!(w, "# HELP revmon_policy_fallbacks_total Fallback-to-blocking windows opened.")?;
    writeln!(w, "# TYPE revmon_policy_fallbacks_total counter")?;
    writeln!(w, "revmon_policy_fallbacks_total {}", a.policy_fallbacks)?;
    writeln!(w, "# HELP revmon_trace_skipped_lines_total Damaged trace lines skipped on import.")?;
    writeln!(w, "# TYPE revmon_trace_skipped_lines_total counter")?;
    writeln!(w, "revmon_trace_skipped_lines_total {}", a.skipped_lines)?;

    writeln!(w, "# HELP revmon_wasted_undo_entries_total Undo entries rolled back.")?;
    writeln!(w, "# TYPE revmon_wasted_undo_entries_total counter")?;
    writeln!(w, "revmon_wasted_undo_entries_total {}", a.wasted_entries)?;
    writeln!(w, "# HELP revmon_wasted_section_{u}_total Discarded section time.")?;
    writeln!(w, "# TYPE revmon_wasted_section_{u}_total counter")?;
    writeln!(w, "revmon_wasted_section_{u}_total {}", a.wasted_time)?;

    writeln!(w, "# HELP revmon_monitor_acquires_total Acquisitions per monitor.")?;
    writeln!(w, "# TYPE revmon_monitor_acquires_total counter")?;
    for p in &a.profiles {
        let m = prom_monitor_label(names, p.monitor);
        writeln!(w, "revmon_monitor_acquires_total{{monitor=\"{m}\"}} {}", p.acquires)?;
    }
    writeln!(w, "# HELP revmon_monitor_blocked_{u}_total Entry-queue blocking time per monitor.")?;
    writeln!(w, "# TYPE revmon_monitor_blocked_{u}_total counter")?;
    for p in &a.profiles {
        let m = prom_monitor_label(names, p.monitor);
        writeln!(w, "revmon_monitor_blocked_{u}_total{{monitor=\"{m}\"}} {}", p.total_blocked)?;
    }
    writeln!(w, "# HELP revmon_monitor_rollbacks_total Rollbacks per monitor.")?;
    writeln!(w, "# TYPE revmon_monitor_rollbacks_total counter")?;
    for p in &a.profiles {
        let m = prom_monitor_label(names, p.monitor);
        writeln!(w, "revmon_monitor_rollbacks_total{{monitor=\"{m}\"}} {}", p.rollbacks)?;
    }
    writeln!(w, "# HELP revmon_monitor_blocking_{u} Blocking-time quantiles per monitor.")?;
    writeln!(w, "# TYPE revmon_monitor_blocking_{u} summary")?;
    for p in &a.profiles {
        let m = prom_monitor_label(names, p.monitor);
        for (q, pct) in [("0.5", 50.0), ("0.99", 99.0)] {
            writeln!(
                w,
                "revmon_monitor_blocking_{u}{{monitor=\"{m}\",quantile=\"{q}\"}} {}",
                p.blocking.percentile(pct)
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, thread: u64, monitor: u64, kind: EventKind) -> Event {
        Event { ts, thread, monitor, kind }
    }

    fn inversion_scenario() -> Vec<Event> {
        vec![
            ev(10, 1, 7, EventKind::Acquire),
            ev(20, 2, 7, EventKind::Block),
            ev(22, 1, 7, EventKind::RevokeRequest { by: 2 }),
            ev(30, 1, 7, EventKind::Rollback { entries: 4, duration: 6 }),
            ev(31, 2, 7, EventKind::Acquire),
            ev(40, 2, 7, EventKind::Commit),
            ev(40, 2, 7, EventKind::Release),
        ]
    }

    fn named() -> BTreeMap<u64, String> {
        let mut names = BTreeMap::new();
        names.insert(7, "queue".to_string());
        names
    }

    #[test]
    fn analysis_profiles_and_episodes_agree() {
        let a = Analysis::from_events(&inversion_scenario());
        assert_eq!(a.events, 7);
        assert_eq!(a.episodes.len(), 1);
        assert_eq!(a.revocation_episodes(), 1);
        assert_eq!(a.profiles.len(), 1);
        let p = &a.profiles[0];
        assert_eq!(p.monitor, 7);
        assert_eq!(p.acquires, 2);
        assert_eq!(p.blocks, 1);
        assert_eq!(p.rollbacks, 1);
        assert_eq!(p.wasted_entries, 4);
        assert_eq!(p.total_blocked, 11);
        assert_eq!(p.held.count(), 1); // requester's section; holder's rolled back
        assert_eq!(a.wasted_entries, 4);
    }

    #[test]
    fn exact_stats_are_exact() {
        let mut s = ExactStats::default();
        for v in [5u64, 1, 9, 3] {
            s.push(v);
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.percentile(50.0), 3);
        assert_eq!(s.percentile(99.0), 9);
        assert_eq!(s.max(), 9);
        assert!((s.mean() - 4.5).abs() < 1e-9);
    }

    #[test]
    fn text_report_uses_monitor_names() {
        let a = Analysis::from_events(&inversion_scenario());
        let mut buf = Vec::new();
        write_report(&mut buf, &a, &named(), TsUnit::VirtualTicks).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("monitor \"queue\""), "names missing in:\n{text}");
        assert!(text.contains("revocation"), "resolution missing in:\n{text}");
        assert!(text.contains("4 undo entries"), "wasted work missing in:\n{text}");
        assert!(!text.contains("#7"), "named monitor leaked its id:\n{text}");
    }

    #[test]
    fn json_report_is_balanced_and_complete() {
        let a = Analysis::from_events(&inversion_scenario());
        let json = analysis_json(&a, &named(), TsUnit::VirtualTicks);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"resolutions\": {\"revocation\": 1"));
        assert!(json.contains("\"monitor_name\": \"queue\""));
        assert!(json.contains("\"wasted_entries\": 4"));
        // The whole document re-parses line-by-line with the importer's
        // scanner? Not flat JSON — just sanity-check key fields instead.
        assert!(json.contains("\"latency\": 11"));
    }

    #[test]
    fn governed_scenario_surfaces_in_every_renderer() {
        let events = vec![
            ev(10, 1, 7, EventKind::Acquire),
            ev(20, 2, 7, EventKind::Block),
            ev(22, 1, 7, EventKind::RevokeRequest { by: 2 }),
            ev(30, 1, 7, EventKind::Rollback { entries: 4, duration: 6 }),
            ev(32, 1, 7, EventKind::Acquire),
            ev(34, 1, 7, EventKind::GovernorThrottle { by: 2 }),
            ev(34, 1, 7, EventKind::PolicyFallback),
            ev(40, 1, 7, EventKind::Commit),
            ev(40, 1, 7, EventKind::Release),
            ev(41, 2, 7, EventKind::Acquire),
            ev(50, 2, 7, EventKind::Commit),
            ev(50, 2, 7, EventKind::Release),
        ];
        let a = Analysis::from_events(&events);
        assert_eq!(a.governor_throttles, 1);
        assert_eq!(a.policy_fallbacks, 1);
        assert_eq!(a.profiles[0].governor_throttles, 1);
        assert_eq!(a.profiles[0].policy_fallbacks, 1);

        let mut buf = Vec::new();
        write_report(&mut buf, &a, &named(), TsUnit::VirtualTicks).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("governed: 1 revocations throttled, 1 fallback windows"), "{text}");
        assert!(text.contains("governed (1 throttled, 1 fallbacks)"), "{text}");

        let json = analysis_json(&a, &named(), TsUnit::VirtualTicks);
        assert!(json.contains("\"governor_throttles\": 1"), "{json}");
        assert!(json.contains("\"policy_fallbacks\": 1"), "{json}");

        let mut buf = Vec::new();
        write_prometheus(&mut buf, &a, &named(), TsUnit::VirtualTicks).unwrap();
        let prom = String::from_utf8(buf).unwrap();
        assert!(prom.contains("revmon_governor_throttles_total 1"), "{prom}");
        assert!(prom.contains("revmon_policy_fallbacks_total 1"), "{prom}");
    }

    #[test]
    fn damaged_pairs_reclassify_unresolved_as_truncated() {
        // Holder t1's resolving events fell on skipped lines: the
        // episode never closes, which without damage info would read as
        // an unresolvable inversion.
        let events = vec![
            ev(10, 1, 7, EventKind::Acquire),
            ev(20, 2, 7, EventKind::Block),
            ev(22, 1, 7, EventKind::RevokeRequest { by: 2 }),
        ];
        let mut a = Analysis::from_events(&events);
        assert_eq!(a.episodes[0].resolution, Resolution::Unresolved);

        // Damage on an unrelated pair must not reclassify anything.
        let unrelated = [(9u64, 9u64)].into_iter().collect();
        a.mark_truncated(&unrelated, 3);
        assert_eq!(a.episodes[0].resolution, Resolution::Unresolved);
        assert_eq!(a.skipped_lines, 3);

        let damaged = [(1u64, 7u64)].into_iter().collect();
        a.mark_truncated(&damaged, 3);
        assert_eq!(a.episodes[0].resolution, Resolution::Truncated);
        let truncated =
            a.resolution_counts().iter().find(|(r, _)| *r == Resolution::Truncated).unwrap().1;
        assert_eq!(truncated, 1);

        let mut buf = Vec::new();
        write_report(&mut buf, &a, &named(), TsUnit::VirtualTicks).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("damage: 3 skipped lines"), "{text}");
        assert!(text.contains("truncated"), "{text}");

        let json = analysis_json(&a, &named(), TsUnit::VirtualTicks);
        assert!(json.contains("\"skipped_lines\": 3"), "{json}");
        assert!(json.contains("\"resolution\": \"truncated\""), "{json}");
    }

    #[test]
    fn prometheus_output_is_well_formed() {
        let a = Analysis::from_events(&inversion_scenario());
        let mut buf = Vec::new();
        write_prometheus(&mut buf, &a, &named(), TsUnit::VirtualTicks).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("revmon_episodes_total{resolution=\"revocation\"} 1"));
        assert!(text.contains("revmon_inversion_latency_ticks{quantile=\"0.99\"} 11"));
        assert!(text.contains("revmon_monitor_acquires_total{monitor=\"queue\"} 2"));
        assert!(text.contains("revmon_wasted_undo_entries_total 4"));
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad sample line: {line}");
        }
    }
}
