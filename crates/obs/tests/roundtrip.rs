//! Integration tests for the analyze layer: JSONL export → import
//! round-trips losslessly on clean traces, and damaged traces degrade
//! to counted warnings plus a usable analysis — never a panic.

use revmon_obs::{
    import_trace_jsonl, reconstruct_episodes, write_trace_jsonl, write_trace_jsonl_with, Analysis,
    Event, EventKind, EventSink, Resolution, RunMeta, TsUnit,
};
use std::collections::BTreeMap;

fn ev(ts: u64, thread: u64, monitor: u64, kind: EventKind) -> Event {
    Event { ts, thread, monitor, kind }
}

/// Every event-kind variant, exercising all payload shapes.
fn full_vocabulary_trace() -> Vec<Event> {
    vec![
        ev(10, 1, 7, EventKind::Acquire),
        ev(14, 3, 9, EventKind::Acquire),
        ev(16, 3, 9, EventKind::NonRevocable),
        ev(20, 2, 7, EventKind::Block),
        ev(22, 1, 7, EventKind::RevokeRequest { by: 2 }),
        ev(24, 4, 9, EventKind::Block),
        ev(26, 9, 9, EventKind::InversionUnresolved { by: 4 }),
        ev(28, 5, Event::NO_MONITOR, EventKind::DeadlockDetected { cycle_len: 2 }),
        ev(28, 5, Event::NO_MONITOR, EventKind::DeadlockBroken),
        ev(30, 1, 7, EventKind::Rollback { entries: 4, duration: 6 }),
        ev(31, 2, 7, EventKind::Acquire),
        ev(40, 2, 7, EventKind::Commit),
        ev(40, 2, 7, EventKind::Release),
    ]
}

#[test]
fn jsonl_round_trip_is_lossless_on_clean_traces() {
    let events = full_vocabulary_trace();
    let mut names = BTreeMap::new();
    names.insert(7u64, "queue".to_string());
    names.insert(9u64, "log \"quoted\"".to_string());

    let mut buf = Vec::new();
    write_trace_jsonl(&mut buf, &events, TsUnit::VirtualTicks, &names).unwrap();
    let text = String::from_utf8(buf).unwrap();

    let imp = import_trace_jsonl(&text);
    assert_eq!(imp.warnings.total(), 0, "clean export produced warnings: {:?}", imp.warnings);
    assert_eq!(imp.events, events, "events did not round-trip");
    assert_eq!(imp.names, names, "name table did not round-trip");
    assert_eq!(imp.ts_unit, Some(TsUnit::VirtualTicks));

    // Round-trip again: export of the import is byte-identical.
    let mut buf2 = Vec::new();
    write_trace_jsonl(&mut buf2, &imp.events, imp.unit(), &imp.names).unwrap();
    assert_eq!(text, String::from_utf8(buf2).unwrap());
}

#[test]
fn run_meta_survives_export_import_and_reexport() {
    let events = full_vocabulary_trace();
    let mut names = BTreeMap::new();
    names.insert(7u64, "queue".to_string());
    let meta = RunMeta {
        recorded: Some(events.len() as u64),
        dropped: Some(0),
        governor: Some((3, 500, 2000)),
        scheduler: Some("priority".into()),
    };

    let mut buf = Vec::new();
    write_trace_jsonl_with(&mut buf, &events, TsUnit::VirtualTicks, &names, &meta).unwrap();
    let text = String::from_utf8(buf).unwrap();

    let imp = import_trace_jsonl(&text);
    assert_eq!(imp.warnings.total(), 0, "meta header broke the importer: {:?}", imp.warnings);
    assert_eq!(imp.events, events);
    assert_eq!(imp.run_meta, meta, "run meta did not round-trip");

    // Re-export with the imported meta: byte-identical.
    let mut buf2 = Vec::new();
    write_trace_jsonl_with(&mut buf2, &imp.events, imp.unit(), &imp.names, &imp.run_meta).unwrap();
    assert_eq!(text, String::from_utf8(buf2).unwrap());
}

#[test]
fn ring_overflow_shows_up_in_the_trace_meta_header() {
    // A sink too small for its stream must not masquerade as a quiet
    // run: the export's meta header carries the drop counter.
    let sink = EventSink::with_capacity(TsUnit::WallNanos, 2);
    for i in 0..10u64 {
        sink.record(ev(i, 0, 1, EventKind::Acquire)); // one shard
    }
    assert_eq!(sink.recorded(), 10);
    assert_eq!(sink.dropped(), 8);

    let events = sink.drain();
    assert_eq!(events.len(), 2);
    let meta = RunMeta {
        recorded: Some(sink.recorded()),
        dropped: Some(sink.dropped()),
        ..RunMeta::default()
    };
    let mut buf = Vec::new();
    write_trace_jsonl_with(&mut buf, &events, TsUnit::WallNanos, &BTreeMap::new(), &meta).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert!(text.lines().next().unwrap().contains("\"dropped\":8"), "header: {text}");

    let imp = import_trace_jsonl(&text);
    assert_eq!(imp.run_meta.dropped, Some(8), "drop counter lost on import");
    assert_eq!(imp.run_meta.recorded, Some(10));
    assert_eq!(imp.events.len(), 2);
}

#[test]
fn corrupt_fixture_degrades_to_counted_warnings() {
    let text = include_str!("fixtures/corrupt_trace.jsonl");
    let imp = import_trace_jsonl(text);

    // Damage census: one truncated line + one non-JSON line, one
    // unknown kind, one backwards timestamp. The unknown meta kind
    // (shard_map) passes through without a warning.
    assert_eq!(imp.warnings.malformed_lines, 2, "warnings: {:?}", imp.warnings);
    assert_eq!(imp.warnings.unknown_kinds, 1);
    assert_eq!(imp.warnings.out_of_order, 1);
    assert_eq!(imp.events.len(), 7);
    assert_eq!(imp.ts_unit, Some(TsUnit::VirtualTicks));
    assert_eq!(imp.names.get(&3).map(String::as_str), Some("queue"));

    // The surviving events still analyze into the expected episode.
    let episodes = reconstruct_episodes(&imp.events);
    assert_eq!(episodes.len(), 1);
    assert_eq!(episodes[0].resolution, Resolution::Revocation);
    assert_eq!(episodes[0].wasted_entries, 4);

    let a = Analysis::from_events(&imp.events);
    assert_eq!(a.revocation_episodes(), 1);
    assert_eq!(a.profiles[0].monitor, 3);
}

#[test]
fn import_never_panics_on_fuzzed_prefixes() {
    // Chop a clean export at every byte boundary: every prefix must
    // import without panicking, with at most one malformed-line count
    // (the torn final line).
    let events = full_vocabulary_trace();
    let mut buf = Vec::new();
    write_trace_jsonl(&mut buf, &events, TsUnit::VirtualTicks, &BTreeMap::new()).unwrap();
    let text = String::from_utf8(buf).unwrap();
    for cut in 0..text.len() {
        if !text.is_char_boundary(cut) {
            continue;
        }
        let imp = import_trace_jsonl(&text[..cut]);
        assert!(
            imp.warnings.malformed_lines <= 1,
            "prefix of len {cut} produced {:?}",
            imp.warnings
        );
    }
}
