//! Exploration-backed integration tests over the `.rvm` corpus.
//!
//! These drive the whole subsystem end to end: assemble a real corpus
//! program, enumerate its schedules under a context bound, check the
//! invariant library on every run, and exercise the failure workflow
//! (catch → minimize → serialize → replay) that the `revmon explore`
//! CLI exposes.

use revmon_core::GovernorConfig;
use revmon_explore::{
    check_cross_policy, explore, fuzz, minimize, Bounds, FuzzPlan, Runner, ScheduleFile, Terminal,
};
use revmon_vm::VmConfig;

fn read(name: &str) -> String {
    let path = format!("{}/../../programs/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

fn corpus_runner(name: &str, cfg: VmConfig) -> Runner {
    let program = revmon_explore::testprogs::assemble_corpus(&read(name))
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    Runner::new(program, "main", cfg).unwrap_or_else(|e| panic!("{name}: {e}"))
}

#[test]
fn adversarial_corpus_is_clean_under_bounded_exploration() {
    // The two adversarial programs plus the deadlock benchmark, each
    // exhaustively enumerated under a two-deviation bound. Every
    // schedule must satisfy every invariant, and the enumeration must
    // actually branch (a single-schedule "search" proves nothing).
    for name in ["nested_wait_revoke.rvm", "volatile_revoke.rvm", "deadlock.rvm"] {
        let runner = corpus_runner(name, VmConfig::modified());
        let report = explore(&runner, Bounds::default());
        assert!(
            report.clean(),
            "{name}: {:?}",
            report.failures.first().map(|f| &f.outcome.violations)
        );
        assert!(!report.stats.capped, "{name}: enumeration must complete");
        assert!(report.stats.schedules > 1, "{name}: search must branch");
        assert_eq!(report.stats.budget_exhausted, 0, "{name}: every schedule terminates");
        assert!(!report.terminal_states.is_empty(), "{name}: some schedule completes");
    }
}

#[test]
fn exploration_is_deterministic() {
    // Same program, same bounds — bit-identical search. This is the
    // property everything else (dedup, replay, minimization) rests on.
    let run = || {
        let runner = corpus_runner("volatile_revoke.rvm", VmConfig::modified());
        explore(&runner, Bounds::default())
    };
    let (a, b) = (run(), run());
    assert_eq!(format!("{:?}", a.stats), format!("{:?}", b.stats));
    assert_eq!(a.terminal_states, b.terminal_states);
    assert_eq!(a.failures.len(), b.failures.len());
}

#[test]
fn injected_rollback_fault_is_caught_minimized_and_replayed_from_json() {
    // The acceptance workflow end to end, on the paper's own benchmark:
    // break rollback (skip every undo-entry restore), explore until the
    // oracle objects, shrink the schedule, serialize it, and prove the
    // parsed artifact reproduces the same violation in the same final
    // state.
    let src = read("priority_inversion.rvm");
    let mut cfg = VmConfig::modified();
    cfg.fault_skip_undo = 1_000_000;
    let runner = corpus_runner("priority_inversion.rvm", cfg);

    let report = explore(&runner, Bounds { max_preemptions: 1, ..Bounds::default() });
    assert!(!report.clean(), "defeated rollback must surface under exploration");
    let failure = &report.failures[0];
    assert!(failure.outcome.violates("rollback-restoration"));

    let min = minimize(&runner, &failure.schedule, "rollback-restoration", 0);
    assert!(min.schedule.len() <= failure.schedule.len());
    let reference = runner.run(&min.schedule);
    assert!(reference.violates("rollback-restoration"));

    let file = ScheduleFile::new(
        "priority_inversion.rvm",
        &src,
        "main",
        runner.config(),
        min.schedule.clone(),
        Some("rollback-restoration".to_string()),
    );
    let parsed = ScheduleFile::parse(&file.to_json()).expect("round-trips through JSON");
    assert!(parsed.matches_program(&src), "program hash must survive the round trip");
    assert_eq!(parsed.decisions, min.schedule);
    assert_eq!(parsed.fault_skip_undo, 1_000_000);

    let mut replay_cfg = VmConfig::modified();
    parsed.apply_to(&mut replay_cfg).expect("schedule file applies to a stock config");
    let replayed = corpus_runner("priority_inversion.rvm", replay_cfg).run(&parsed.decisions);
    assert!(replayed.violates("rollback-restoration"), "replay must reproduce the violation");
    assert_eq!(replayed.fingerprint, reference.fingerprint, "replay must be bit-exact");
}

#[test]
fn unfaulted_priority_inversion_explores_clean() {
    // The same benchmark without the fault: rollbacks happen (the
    // oracle verifies them against its shadow heap) and nothing else.
    let runner = corpus_runner("priority_inversion.rvm", VmConfig::modified());
    let report = explore(&runner, Bounds { max_preemptions: 1, ..Bounds::default() });
    assert!(report.clean(), "{:?}", report.failures.first().map(|f| &f.outcome.violations));
    assert!(report.stats.rollbacks > 0, "exploration must exercise revocation");
}

#[test]
fn ungoverned_forced_inversion_livelocks() {
    // The fault-injection mode: every contended acquire is an inversion,
    // so two equal-priority threads revoke each other forever. Without a
    // governor the fair schedule never terminates — the runner's round
    // budget is the only thing that stops it.
    let mut runner =
        revmon_explore::testprogs::forced_repeat_revocation(GovernorConfig::disabled());
    runner.max_rounds = 20_000;
    let out = runner.run(&[]);
    assert_eq!(out.terminal, Terminal::Budget, "ungoverned repeat-revocation must livelock");
    assert!(out.rollbacks > 4, "the livelock is a rollback ping-pong, saw {}", out.rollbacks);
}

#[test]
fn governed_forced_inversion_is_bounded_under_exhaustive_and_fuzzed_schedules() {
    // Same pathological program under a retry budget of 1: every
    // schedule completes, the `bounded-revocation` invariant (checked
    // between every round) holds throughout, and the committed counter
    // is exact — the governor degrades to blocking instead of
    // livelocking.
    let gov = GovernorConfig { k: 1, backoff: 8, decay: 0 };
    let runner = revmon_explore::testprogs::forced_repeat_revocation(gov);

    let report = explore(&runner, Bounds::default());
    assert!(report.clean(), "{:?}", report.failures.first().map(|f| &f.outcome.violations));
    assert!(!report.stats.capped, "enumeration must complete");
    assert!(report.stats.schedules > 1, "search must branch");
    assert_eq!(report.stats.budget_exhausted, 0, "no schedule may livelock under the governor");
    assert!(report.stats.rollbacks > 0, "the budget still permits bounded revocation");
    assert!(!report.terminal_states.is_empty());
    let baseline = runner.run(&[]);
    assert_eq!(baseline.terminal, Terminal::Completed);
    assert_eq!(baseline.statics[0], revmon_vm::value::Value::Int(2));

    // Fuzzed schedules sample far off the fair baseline; the invariant
    // must hold there too, deterministically in the seed.
    let fr = fuzz(&runner, FuzzPlan { iters: 40, ..Default::default() });
    assert!(fr.failure.is_none(), "fuzzing violated an invariant: {:?}", fr.failure);
    assert!(fr.completed > 0, "fuzzed schedules must complete under the governor");
}

#[test]
fn revocation_and_blocking_agree_on_the_counter_corpus() {
    // The paper's transparency claim on a real corpus program: for a
    // data-race-free, deadlock-free program, revocation commits exactly
    // what blocking commits, schedule for schedule.
    let program =
        revmon_explore::testprogs::assemble_corpus(&read("counter.rvm")).expect("assembles");
    let schedules = vec![vec![1], vec![1, 1], vec![0, 1, 0, 1]];
    let report = check_cross_policy(&program, "main", VmConfig::modified(), &schedules)
        .expect("both runners build");
    assert!(report.clean(), "{:?}", report.violations.first());
    assert_eq!(report.schedules, 4, "empty script plus the three forced ones");
}
