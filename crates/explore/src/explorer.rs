//! Exhaustive bounded schedule enumeration.
//!
//! Stateless depth-first search over decision prefixes, in the style of
//! CHESS: each explored schedule is a *prefix* of explicit decisions; the
//! run continues past the prefix with the default choice — the fair
//! round-robin rotation, i.e. the production scheduler's own schedule.
//! Every decision point the run passes spawns sibling prefixes, one per
//! alternative candidate.
//!
//! Two prunes keep the search tractable:
//!
//! * **Context bounding** — an alternative that deviates from the fair
//!   default (forcing a switch the stock scheduler would not make)
//!   consumes one unit of the budget; prefixes that would exceed
//!   [`Bounds::max_preemptions`] are cut. Most concurrency bugs manifest
//!   within two such forced switches (Musuvathi & Qadeer, PLDI 2007);
//!   bounding deviations from a deterministic fair scheduler rather
//!   than raw context switches (delay bounding — Emmi, Qadeer &
//!   Rakamarić, POPL 2011) keeps the baseline live even on lock-free
//!   spin loops.
//! * **State dedup** — a choice point whose (state fingerprint,
//!   deviations-spent) pair has been expanded before contributes no new
//!   siblings: the same futures were already scheduled from its first
//!   visit.

use crate::runner::{RunOutcome, Runner, Terminal};
use std::collections::HashSet;

/// Search limits.
#[derive(Clone, Copy, Debug)]
pub struct Bounds {
    /// Maximum forced deviations from the fair default schedule per run
    /// (the context bound).
    pub max_preemptions: u32,
    /// Maximum schedules to execute (0 = unlimited). When the cap stops
    /// the search early, [`Stats::capped`] is set — never silently.
    pub max_schedules: u64,
    /// Stop at the first invariant violation instead of cataloguing all.
    pub stop_on_first_failure: bool,
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds { max_preemptions: 2, max_schedules: 0, stop_on_first_failure: true }
    }
}

/// Search statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    /// Schedules fully executed.
    pub schedules: u64,
    /// Decision points encountered across all runs.
    pub decision_points: u64,
    /// Sibling expansions skipped because the state was already expanded.
    pub pruned_visited: u64,
    /// Sibling expansions skipped by the preemption bound.
    pub pruned_preemption: u64,
    /// Runs that ended in a stall (blocked machine, no runnable thread).
    pub stalls: u64,
    /// Runs that hit the per-run round budget.
    pub budget_exhausted: u64,
    /// Rollbacks verified by the oracle across all runs.
    pub rollbacks: u64,
    /// True when `max_schedules` stopped the search before the frontier
    /// drained — the enumeration is then a *sample*, not a proof.
    pub capped: bool,
}

/// A schedule that violated an invariant.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The decision prefix that was explicitly scheduled.
    pub prefix: Vec<u32>,
    /// The full decision sequence actually taken (prefix + defaults),
    /// suitable for bit-exact replay.
    pub schedule: Vec<u32>,
    /// The complete outcome of the failing run.
    pub outcome: RunOutcome,
}

/// Result of one exploration.
#[derive(Clone, Debug, Default)]
pub struct ExploreReport {
    /// Search statistics.
    pub stats: Stats,
    /// Schedules that violated invariants, in discovery order.
    pub failures: Vec<Failure>,
    /// Distinct terminal-state fingerprints among completed runs — a
    /// measure of how many observably different outcomes the program has.
    pub terminal_states: Vec<u64>,
}

impl ExploreReport {
    /// Whether every explored schedule satisfied every invariant.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Exhaustively enumerate schedules of `runner`'s program within
/// `bounds`.
pub fn explore(runner: &Runner, bounds: Bounds) -> ExploreReport {
    let mut report = ExploreReport::default();
    let mut terminal_fps: HashSet<u64> = HashSet::new();
    // (fingerprint at choice point, preemptions spent reaching it).
    let mut expanded: HashSet<(u64, u32)> = HashSet::new();
    let mut frontier: Vec<Vec<u32>> = vec![Vec::new()];

    while let Some(prefix) = frontier.pop() {
        if bounds.max_schedules != 0 && report.stats.schedules >= bounds.max_schedules {
            report.stats.capped = true;
            break;
        }
        let out = runner.run(&prefix);
        report.stats.schedules += 1;
        report.stats.decision_points += out.decisions.len() as u64;
        report.stats.rollbacks += out.rollbacks;
        match out.terminal {
            Terminal::Stalled => report.stats.stalls += 1,
            Terminal::Budget => report.stats.budget_exhausted += 1,
            Terminal::Completed => {
                terminal_fps.insert(out.fingerprint);
            }
            _ => {}
        }
        let failed = !out.violations.is_empty();

        // Expand siblings of every decision at or past the prefix edge.
        // Decisions inside the prefix were expanded when the ancestor run
        // first passed them.
        let mut preemptions = 0u32;
        for (d, dp) in out.decisions.iter().enumerate() {
            let this_preempts = dp.record.is_preemption() as u32;
            if d >= prefix.len() {
                if !expanded.insert((dp.fingerprint, preemptions)) {
                    report.stats.pruned_visited += 1;
                    preemptions += this_preempts;
                    continue;
                }
                for alt in 0..dp.record.n_candidates {
                    if alt == dp.record.chosen {
                        continue;
                    }
                    let alt_preempts = (alt != 0) as u32;
                    if preemptions + alt_preempts > bounds.max_preemptions {
                        report.stats.pruned_preemption += 1;
                        continue;
                    }
                    let mut next: Vec<u32> =
                        out.decisions[..d].iter().map(|p| p.record.chosen).collect();
                    next.push(alt);
                    frontier.push(next);
                }
            }
            preemptions += this_preempts;
        }

        if failed {
            report.failures.push(Failure { prefix, schedule: out.choices(), outcome: out });
            if bounds.stop_on_first_failure {
                break;
            }
        }
    }

    let mut fps: Vec<u64> = terminal_fps.into_iter().collect();
    fps.sort_unstable();
    report.terminal_states = fps;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testprogs;

    #[test]
    fn counter_is_clean_under_two_preemptions() {
        let report = explore(&testprogs::two_incrementers(2), Bounds::default());
        assert!(report.clean(), "failures: {:?}", report.failures.first());
        assert!(!report.stats.capped);
        assert!(report.stats.schedules > 1, "search must branch");
        assert!(report.stats.decision_points > 0);
    }

    #[test]
    fn deeper_bounds_explore_at_least_as_much() {
        let s1 = explore(
            &testprogs::two_incrementers(1),
            Bounds { max_preemptions: 0, ..Bounds::default() },
        );
        let s2 = explore(
            &testprogs::two_incrementers(1),
            Bounds { max_preemptions: 2, ..Bounds::default() },
        );
        assert!(s2.stats.schedules >= s1.stats.schedules);
        assert!(s1.stats.pruned_preemption > 0, "bound 0 must prune preemptive siblings");
    }

    #[test]
    fn schedule_cap_is_reported_not_silent() {
        let report = explore(
            &testprogs::two_incrementers(3),
            Bounds { max_schedules: 2, ..Bounds::default() },
        );
        assert_eq!(report.stats.schedules, 2);
        assert!(report.stats.capped);
    }

    #[test]
    fn injected_fault_is_found_and_replayable() {
        let report = explore(&testprogs::faulty_inversion_pair(1), Bounds::default());
        assert!(!report.clean(), "fault must surface under exploration");
        let failure = &report.failures[0];
        assert!(failure.outcome.violates("rollback-restoration"));
        // The recorded schedule reproduces the violation bit-for-bit.
        let replay = testprogs::faulty_inversion_pair(1).run(&failure.schedule);
        assert!(replay.violates("rollback-restoration"));
        assert_eq!(replay.fingerprint, failure.outcome.fingerprint);
    }

    #[test]
    fn every_counter_schedule_commits_both_increments() {
        let runner = testprogs::two_incrementers(1);
        let report = explore(&runner, Bounds::default());
        assert!(report.clean());
        // Exhaustiveness in action: replay a few distinct prefixes and
        // confirm the committed counter is always 2.
        for schedule in [vec![], vec![1], vec![1, 1]] {
            let out = runner.run(&schedule);
            assert_eq!(out.statics[0], revmon_vm::value::Value::Int(2));
        }
    }
}
