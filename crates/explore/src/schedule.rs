//! Serializable `.schedule.json` replay artifacts.
//!
//! A failing schedule is only useful if it can travel: out of a fuzzing
//! run, into a bug report, back into `revmon explore --replay`. The
//! artifact captures everything replay determinism depends on — the
//! program's identity (name + FNV-1a content hash), the entry method,
//! the VM configuration axes that alter execution (inversion policy,
//! RNG seed, quantum, step cap, fault injection), and the decision
//! sequence itself. An optional `expect` block names the invariant the
//! schedule is supposed to violate, so replays can assert they still
//! reproduce the original failure.
//!
//! The format is a small fixed-shape JSON document, written and parsed
//! by hand (this workspace deliberately carries no serde dependency).

use revmon_core::InversionPolicy;
use revmon_vm::VmConfig;

/// A portable schedule: program identity + config axes + decisions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleFile {
    /// Format version (currently 1).
    pub version: u32,
    /// Program file name (diagnostic; the hash is authoritative).
    pub program: String,
    /// FNV-1a 64-bit hash of the program source text, as fixed-width hex.
    pub program_fnv: String,
    /// Entry method name.
    pub entry: String,
    /// Inversion policy tag: `revocation`, `blocking`, `inherit`, or
    /// `ceiling=N`.
    pub policy: String,
    /// RNG seed the run used.
    pub seed: u64,
    /// Scheduling quantum in ticks.
    pub quantum: u64,
    /// Instruction cap (0 = unlimited).
    pub max_steps: u64,
    /// Test-only rollback fault injection level.
    pub fault_skip_undo: u32,
    /// The decision sequence.
    pub decisions: Vec<u32>,
    /// Invariant this schedule is expected to violate, if any.
    pub expect_invariant: Option<String>,
}

/// FNV-1a 64-bit hash of `text`, the schedule format's program identity.
pub fn fnv1a(text: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The policy tag for a configuration.
pub fn policy_tag(cfg: &VmConfig) -> String {
    match cfg.policy {
        InversionPolicy::Revocation => "revocation".into(),
        InversionPolicy::Blocking => "blocking".into(),
        InversionPolicy::PriorityInheritance => "inherit".into(),
        InversionPolicy::PriorityCeiling(p) => format!("ceiling={}", p.level()),
    }
}

/// Parse a policy tag back into an [`InversionPolicy`].
pub fn parse_policy_tag(tag: &str) -> Result<InversionPolicy, String> {
    Ok(match tag {
        "revocation" => InversionPolicy::Revocation,
        "blocking" => InversionPolicy::Blocking,
        "inherit" => InversionPolicy::PriorityInheritance,
        t if t.starts_with("ceiling=") => {
            let n: u8 = t[8..].parse().map_err(|_| format!("bad ceiling in `{t}`"))?;
            InversionPolicy::PriorityCeiling(revmon_core::Priority::new(n))
        }
        t => return Err(format!("unknown policy tag `{t}`")),
    })
}

impl ScheduleFile {
    /// Build an artifact from a run's context.
    pub fn new(
        program_name: &str,
        program_src: &str,
        entry: &str,
        cfg: &VmConfig,
        decisions: Vec<u32>,
        expect_invariant: Option<String>,
    ) -> Self {
        ScheduleFile {
            version: 1,
            program: program_name.to_string(),
            program_fnv: format!("{:016x}", fnv1a(program_src)),
            entry: entry.to_string(),
            policy: policy_tag(cfg),
            seed: cfg.seed,
            quantum: cfg.cost.quantum,
            max_steps: cfg.max_steps,
            fault_skip_undo: cfg.fault_skip_undo,
            decisions,
            expect_invariant,
        }
    }

    /// Apply the artifact's configuration axes onto `cfg` (policy, seed,
    /// quantum, step cap, fault level).
    pub fn apply_to(&self, cfg: &mut VmConfig) -> Result<(), String> {
        cfg.policy = parse_policy_tag(&self.policy)?;
        cfg.seed = self.seed;
        cfg.cost.quantum = self.quantum;
        cfg.max_steps = self.max_steps;
        cfg.fault_skip_undo = self.fault_skip_undo;
        Ok(())
    }

    /// Verify the artifact matches `program_src` (FNV identity check).
    pub fn matches_program(&self, program_src: &str) -> bool {
        self.program_fnv == format!("{:016x}", fnv1a(program_src))
    }

    /// Serialize as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let decisions: Vec<String> = self.decisions.iter().map(|d| d.to_string()).collect();
        let expect = match &self.expect_invariant {
            None => "null".to_string(),
            Some(s) => format!("\"{}\"", escape(s)),
        };
        format!(
            "{{\n  \"version\": {},\n  \"program\": \"{}\",\n  \"program_fnv\": \"{}\",\n  \"entry\": \"{}\",\n  \"policy\": \"{}\",\n  \"seed\": {},\n  \"quantum\": {},\n  \"max_steps\": {},\n  \"fault_skip_undo\": {},\n  \"decisions\": [{}],\n  \"expect_invariant\": {}\n}}\n",
            self.version,
            escape(&self.program),
            escape(&self.program_fnv),
            escape(&self.entry),
            escape(&self.policy),
            self.seed,
            self.quantum,
            self.max_steps,
            self.fault_skip_undo,
            decisions.join(", "),
            expect,
        )
    }

    /// Parse a document produced by [`ScheduleFile::to_json`] (or edited
    /// by hand within the same shape).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut p = Parser { s: text.as_bytes(), i: 0 };
        p.expect(b'{')?;
        let mut file = ScheduleFile {
            version: 0,
            program: String::new(),
            program_fnv: String::new(),
            entry: String::new(),
            policy: String::new(),
            seed: 0,
            quantum: 0,
            max_steps: 0,
            fault_skip_undo: 0,
            decisions: Vec::new(),
            expect_invariant: None,
        };
        let mut first = true;
        loop {
            p.skip_ws();
            if p.peek() == Some(b'}') {
                p.expect(b'}')?;
                break;
            }
            if !first {
                p.expect(b',')?;
            }
            first = false;
            let key = p.string()?;
            p.expect(b':')?;
            match key.as_str() {
                "version" => file.version = p.number()? as u32,
                "program" => file.program = p.string()?,
                "program_fnv" => file.program_fnv = p.string()?,
                "entry" => file.entry = p.string()?,
                "policy" => file.policy = p.string()?,
                "seed" => file.seed = p.number()?,
                "quantum" => file.quantum = p.number()?,
                "max_steps" => file.max_steps = p.number()?,
                "fault_skip_undo" => file.fault_skip_undo = p.number()? as u32,
                "decisions" => file.decisions = p.number_array()?,
                "expect_invariant" => file.expect_invariant = p.string_or_null()?,
                other => return Err(format!("unknown key `{other}`")),
            }
        }
        if file.version != 1 {
            return Err(format!("unsupported schedule version {}", file.version));
        }
        Ok(file)
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect()
}

/// Minimal JSON reader for the fixed document shape above.
struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.s.get(self.i) == Some(&b) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.i))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        while let Some(&c) = self.s.get(self.i) {
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self.s.get(self.i).copied().ok_or("dangling escape")?;
                    self.i += 1;
                    out.push(match e {
                        b'n' => '\n',
                        b't' => '\t',
                        other => other as char,
                    });
                }
                c => out.push(c as char),
            }
        }
        Err("unterminated string".into())
    }

    fn string_or_null(&mut self) -> Result<Option<String>, String> {
        if self.peek() == Some(b'n') {
            if self.s[self.i..].starts_with(b"null") {
                self.i += 4;
                return Ok(None);
            }
            return Err(format!("expected string or null at byte {}", self.i));
        }
        self.string().map(Some)
    }

    fn number(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.i;
        while self.i < self.s.len() && self.s[self.i].is_ascii_digit() {
            self.i += 1;
        }
        if start == self.i {
            return Err(format!("expected a number at byte {start}"));
        }
        std::str::from_utf8(&self.s[start..self.i])
            .expect("digits are utf8")
            .parse()
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    fn number_array(&mut self) -> Result<Vec<u32>, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(out);
        }
        loop {
            out.push(self.number()? as u32);
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(out);
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testprogs;

    fn sample() -> ScheduleFile {
        ScheduleFile::new(
            "priority_inversion.rvm",
            "; the program text",
            "main",
            &testprogs::explore_config(),
            vec![1, 0, revmon_vm::DEFAULT_CHOICE, 2],
            Some("rollback-restoration".into()),
        )
    }

    #[test]
    fn json_round_trips() {
        let f = sample();
        let parsed = ScheduleFile::parse(&f.to_json()).expect("parses");
        assert_eq!(parsed, f);
    }

    #[test]
    fn no_expectation_round_trips_as_null() {
        let mut f = sample();
        f.expect_invariant = None;
        assert!(f.to_json().contains("\"expect_invariant\": null"));
        assert_eq!(ScheduleFile::parse(&f.to_json()).unwrap(), f);
    }

    #[test]
    fn program_identity_is_content_hashed() {
        let f = sample();
        assert!(f.matches_program("; the program text"));
        assert!(!f.matches_program("; tampered text"));
        assert_eq!(f.program_fnv.len(), 16);
    }

    #[test]
    fn config_axes_survive_apply() {
        let f = sample();
        let mut cfg = revmon_vm::VmConfig::unmodified();
        f.apply_to(&mut cfg).unwrap();
        assert_eq!(schedule_cfg_tag(&cfg), f.policy);
        assert_eq!(cfg.cost.quantum, f.quantum);
        assert_eq!(cfg.seed, f.seed);
    }

    fn schedule_cfg_tag(cfg: &revmon_vm::VmConfig) -> String {
        policy_tag(cfg)
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(ScheduleFile::parse("{").is_err());
        assert!(ScheduleFile::parse("{\"version\": 2}").is_err());
        assert!(ScheduleFile::parse("{\"mystery\": 1}").is_err());
    }
}
