//! `revmon-explore`: deterministic schedule exploration, invariant
//! checking, and replayable fuzzing for the revocation protocol.
//!
//! The VM under test (`revmon-vm`) is a deterministic uniprocessor
//! machine whose only source of nondeterminism is the scheduler's choice
//! at each yield point. This crate turns that choice into a search
//! dimension:
//!
//! * [`Runner`] re-executes one program under one decision script,
//!   fingerprinting the machine at every choice point and checking a
//!   library of invariants ([`invariants`]) — monitor-header legality,
//!   prioritized entry-queue order, undo-log restoration (via a
//!   shadow-heap [`Oracle`]), and JMM-guard soundness.
//! * [`explore`] enumerates schedules exhaustively under an iterative
//!   context bound with state-hash deduplication.
//! * [`fuzz()`] samples the schedule space of programs too large to
//!   enumerate, deterministically in a seed.
//! * [`minimize`] delta-debugs a failing schedule down to a locally
//!   minimal reproducer.
//! * [`ScheduleFile`] serializes a schedule (plus the program identity
//!   and config axes replay depends on) as a portable `.schedule.json`.
//! * [`check_cross_policy`] asserts the paper's transparency claim:
//!   revocation and blocking commit the same final state for DRF,
//!   deadlock-free programs.

#![deny(missing_docs)]

pub mod equiv;
pub mod explorer;
pub mod fuzz;
pub mod invariants;
pub mod runner;
pub mod schedule;
pub mod shrink;
pub mod testprogs;

pub use equiv::{check_cross_policy, EquivReport};
pub use explorer::{explore, Bounds, ExploreReport, Failure, Stats};
pub use fuzz::{fuzz, FuzzPlan, FuzzReport};
pub use invariants::{check_state, check_terminal, Oracle, OracleState, Violation};
pub use runner::{DecisionPoint, RunOutcome, Runner, Terminal};
pub use schedule::{fnv1a, policy_tag, ScheduleFile};
pub use shrink::{minimize, Minimized};
