//! Delta-debugging minimization of failing schedules.
//!
//! A failing schedule found by exploration or fuzzing often carries
//! dozens of irrelevant decisions. [`minimize`] reduces it with three
//! passes, re-running the program after each candidate edit and keeping
//! it only if the *same* invariant still fails:
//!
//! 1. **Tail truncation** — decisions after the failure point are dead
//!    weight; binary-search the shortest failing prefix.
//! 2. **ddmin chunk deletion** — remove contiguous chunks at
//!    progressively finer granularity (Zeller & Hildebrandt's ddmin).
//! 3. **Default substitution** — replace surviving decisions with
//!    [`DEFAULT_CHOICE`] one at a time, turning forced switches back
//!    into preemption-free continuations.
//!
//! The result is locally minimal: no single deletion or defaulting
//! preserves the failure.

use crate::runner::Runner;
use revmon_vm::DEFAULT_CHOICE;

/// Minimization result.
#[derive(Clone, Debug)]
pub struct Minimized {
    /// The reduced schedule (still reproduces the violation).
    pub schedule: Vec<u32>,
    /// Program runs spent minimizing.
    pub runs: u64,
}

/// Shrink `schedule` while `runner` keeps violating `invariant`.
///
/// `schedule` must already reproduce the violation; panics otherwise
/// (a non-reproducing input indicates the caller lost determinism, which
/// this crate exists to prevent). `max_runs` caps the effort (0 =
/// unlimited).
pub fn minimize(runner: &Runner, schedule: &[u32], invariant: &str, max_runs: u64) -> Minimized {
    let mut runs: u64 = 0;
    let fails = |s: &[u32], runs: &mut u64| -> bool {
        *runs += 1;
        runner.run(s).violates(invariant)
    };
    assert!(
        fails(schedule, &mut runs),
        "schedule does not reproduce `{invariant}` — replay determinism lost"
    );
    let budget = |runs: u64| max_runs == 0 || runs < max_runs;
    let mut best: Vec<u32> = schedule.to_vec();

    // Pass 1: shortest failing prefix, by binary search.
    let mut lo = 0usize; // fails with best[..hi], not known for best[..lo]
    let mut hi = best.len();
    while lo < hi && budget(runs) {
        let mid = (lo + hi) / 2;
        if fails(&best[..mid], &mut runs) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    best.truncate(hi);

    // Pass 2: ddmin — delete chunks, halving granularity down to single
    // decisions. A successful deletion re-tests the same offset (the next
    // chunk slid left into it).
    let mut chunk = (best.len() / 2).max(1);
    loop {
        let mut start = 0;
        while start < best.len() && budget(runs) {
            let end = (start + chunk).min(best.len());
            let mut candidate = best.clone();
            candidate.drain(start..end);
            if fails(&candidate, &mut runs) {
                best = candidate;
            } else {
                start = end;
            }
        }
        if chunk == 1 || !budget(runs) {
            break;
        }
        chunk /= 2;
    }

    // Pass 3: neutralize surviving decisions one at a time.
    let mut i = 0;
    while i < best.len() && budget(runs) {
        if best[i] != DEFAULT_CHOICE {
            let mut candidate = best.clone();
            candidate[i] = DEFAULT_CHOICE;
            if fails(&candidate, &mut runs) {
                best = candidate;
            }
        }
        i += 1;
    }
    while best.last() == Some(&DEFAULT_CHOICE) {
        best.pop(); // trailing defaults are implicit
    }

    Minimized { schedule: best, runs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::{explore, Bounds};
    use crate::testprogs;

    #[test]
    fn minimized_schedule_still_fails_and_is_no_longer() {
        let runner = testprogs::faulty_inversion_pair(1);
        let report = explore(&runner, Bounds::default());
        let failure = &report.failures[0];
        // Pad the failing schedule with junk to give the shrinker work.
        let mut noisy = failure.schedule.clone();
        noisy.extend([0, 1, 0, 1, DEFAULT_CHOICE, 1]);
        let min = minimize(&runner, &noisy, "rollback-restoration", 0);
        assert!(runner.run(&min.schedule).violates("rollback-restoration"));
        assert!(min.schedule.len() <= noisy.len());
        assert!(min.runs > 0);
    }

    #[test]
    #[should_panic(expected = "does not reproduce")]
    fn non_reproducing_input_is_rejected() {
        let runner = testprogs::two_incrementers(1);
        minimize(&runner, &[1], "rollback-restoration", 0);
    }
}
