//! Deterministic re-execution of one program under one decision script.
//!
//! The runner is the explorer's execution substrate: it builds a fresh VM
//! for every schedule (stateless model checking — re-execution instead of
//! checkpointing), installs a [`Scripted`] policy and the invariant
//! [`Oracle`], then drives [`Vm::run_round`] one scheduling round at a
//! time. Before each round it fingerprints the machine; if the round
//! consumed a scheduling decision (≥ 2 runnable candidates), that
//! fingerprint identifies the choice point for deduplication.

use crate::invariants::{check_state, check_terminal, Oracle, OracleState, Violation};
use revmon_vm::bytecode::{MethodId, Program};
use revmon_vm::value::Value;
use revmon_vm::{DecisionRecord, RoundOutcome, Scripted, Vm, VmConfig, VmError};
use std::sync::{Arc, Mutex};

/// How a scripted run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Terminal {
    /// Every thread terminated.
    Completed,
    /// No thread could make progress (undetected/unbroken deadlock or a
    /// lost wakeup). A distinct terminal class, not automatically a bug.
    Stalled,
    /// The round budget ran out before termination.
    Budget,
    /// A state-invariant violation stopped the run early.
    CheckFailed,
    /// The VM faulted.
    Fault(String),
}

/// One multi-candidate choice point passed during a run.
#[derive(Clone, Copy, Debug)]
pub struct DecisionPoint {
    /// State fingerprint immediately before the scheduling round that
    /// consumed this decision.
    pub fingerprint: u64,
    /// What was decided.
    pub record: DecisionRecord,
}

/// Everything observable about one scripted run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Choice points in execution order.
    pub decisions: Vec<DecisionPoint>,
    /// How the run ended.
    pub terminal: Terminal,
    /// Fingerprint of the final state.
    pub fingerprint: u64,
    /// Values emitted via the `Emit` native.
    pub output: Vec<Value>,
    /// Final static-slot values (the committed shared state).
    pub statics: Vec<Value>,
    /// Every invariant violation (state checks + oracle).
    pub violations: Vec<Violation>,
    /// Scheduling rounds executed.
    pub rounds: u64,
    /// Rollbacks the oracle verified.
    pub rollbacks: u64,
    /// Final virtual-clock value.
    pub clock: u64,
}

impl RunOutcome {
    /// The decision indices actually taken — feeding these back as the
    /// script reproduces this run bit-for-bit.
    pub fn choices(&self) -> Vec<u32> {
        self.decisions.iter().map(|d| d.record.chosen).collect()
    }

    /// Forced deviations from the fair default schedule (what the
    /// explorer's context bound counts) in this run.
    pub fn preemptions(&self) -> u32 {
        self.decisions.iter().filter(|d| d.record.is_preemption()).count() as u32
    }

    /// Whether any violation carries the given invariant name.
    pub fn violates(&self, invariant: &str) -> bool {
        self.violations.iter().any(|v| v.invariant == invariant)
    }
}

/// A reusable harness: program + entry + base configuration.
#[derive(Clone, Debug)]
pub struct Runner {
    program: Program,
    entry: MethodId,
    entry_name: String,
    config: VmConfig,
    /// Hard cap on scheduling rounds per run (0 = unlimited). Guards the
    /// explorer against schedules that diverge.
    pub max_rounds: u64,
    /// Run the (cheap) state invariants between every round, not just at
    /// the end. Default true; the CLI disables it for large corpora.
    pub check_every_round: bool,
}

impl Runner {
    /// A runner executing `entry` of `program` under `config`.
    ///
    /// The scheduler named in `config` is ignored — every run is driven
    /// by a [`Scripted`] policy — but everything else (inversion policy,
    /// cost model, seed, fault injection) applies as configured.
    pub fn new(program: Program, entry_name: &str, config: VmConfig) -> Result<Self, String> {
        let entry = program
            .method_by_name(entry_name)
            .ok_or_else(|| format!("no method named `{entry_name}`"))?;
        if program.method(entry).params != 0 {
            return Err(format!("entry method `{entry_name}` must take no parameters"));
        }
        Ok(Runner {
            program,
            entry,
            entry_name: entry_name.to_string(),
            config,
            max_rounds: 1_000_000,
            check_every_round: true,
        })
    }

    /// The VM configuration runs execute under.
    pub fn config(&self) -> &VmConfig {
        &self.config
    }

    /// The entry method name.
    pub fn entry_name(&self) -> &str {
        &self.entry_name
    }

    /// The program this runner executes.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Execute the program once under `script`, collecting decisions,
    /// fingerprints and violations.
    pub fn run(&self, script: &[u32]) -> RunOutcome {
        let mut vm = Vm::new(self.program.clone(), self.config);
        let (policy, log) = Scripted::new(script.to_vec());
        vm.set_schedule_policy(Box::new(policy));
        let (oracle, oracle_state) = Oracle::new();
        vm.attach_probe(Box::new(oracle));
        vm.spawn(&self.entry_name, self.entry, vec![], revmon_core::Priority::NORM);
        self.drive(vm, log, oracle_state)
    }

    fn drive(
        &self,
        mut vm: Vm,
        log: revmon_vm::sched::ScriptLog,
        oracle_state: Arc<Mutex<OracleState>>,
    ) -> RunOutcome {
        let mut decisions: Vec<DecisionPoint> = Vec::new();
        let mut violations: Vec<Violation> = Vec::new();
        let mut rounds: u64 = 0;
        let terminal = loop {
            // A round can only consume a decision when ≥ 2 threads are
            // queued; skip the (expensive) fingerprint otherwise.
            let fingerprint = if vm.run_queue_len() >= 2 { vm.state_fingerprint() } else { 0 };
            let consumed_before = log.lock().expect("script log").len();
            match vm.run_round() {
                Ok(RoundOutcome::Done) => break Terminal::Completed,
                Ok(_) => {}
                Err(VmError::Stalled(_)) => break Terminal::Stalled,
                Err(e) => break Terminal::Fault(e.to_string()),
            }
            {
                let recs = log.lock().expect("script log");
                if recs.len() > consumed_before {
                    debug_assert_eq!(recs.len(), consumed_before + 1);
                    decisions.push(DecisionPoint { fingerprint, record: recs[consumed_before] });
                }
            }
            if self.check_every_round {
                let vs = check_state(&vm);
                if !vs.is_empty() {
                    violations.extend(vs);
                    break Terminal::CheckFailed;
                }
            }
            rounds += 1;
            if self.max_rounds != 0 && rounds >= self.max_rounds {
                break Terminal::Budget;
            }
        };

        if terminal == Terminal::Completed {
            violations.extend(check_terminal(&vm));
        } else if !self.check_every_round {
            violations.extend(check_state(&vm));
        }
        let st = oracle_state.lock().expect("oracle state");
        violations.extend(st.violations.iter().cloned());

        let statics = (0..vm.heap().static_count())
            .map(|i| {
                vm.heap().read(revmon_vm::heap::Location::Static(i as u32)).unwrap_or(Value::Null)
            })
            .collect();
        RunOutcome {
            decisions,
            terminal,
            fingerprint: vm.state_fingerprint(),
            output: vm.output().to_vec(),
            statics,
            violations,
            rounds,
            rollbacks: st.rollbacks_checked,
            clock: vm.clock(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testprogs;

    #[test]
    fn empty_script_is_the_preemption_free_run() {
        let runner = testprogs::two_incrementers(1);
        let out = runner.run(&[]);
        assert_eq!(out.terminal, Terminal::Completed);
        assert_eq!(out.preemptions(), 0);
        assert!(out.violations.is_empty(), "violations: {:?}", out.violations);
    }

    #[test]
    fn replaying_recorded_choices_reproduces_the_run() {
        let runner = testprogs::two_incrementers(1);
        let a = runner.run(&[1]);
        let b = runner.run(&a.choices());
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.output, b.output);
        assert_eq!(a.clock, b.clock);
        assert_eq!(a.choices(), b.choices());
    }

    #[test]
    fn different_choices_reach_different_intermediate_schedules() {
        let runner = testprogs::two_incrementers(1);
        let a = runner.run(&[]);
        // Deviate from the baseline at its first decision point.
        let first = a.decisions.first().expect("baseline has decisions").record;
        let alt = (0..first.n_candidates).find(|&c| c != first.chosen).expect(">= 2 candidates");
        let b = runner.run(&[alt]);
        // Same program, same final committed state (DRF counter), but the
        // schedules must actually differ somewhere.
        assert_eq!(a.statics, b.statics);
        assert_ne!(a.choices(), b.choices());
    }
}
