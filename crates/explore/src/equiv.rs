//! Cross-policy result equivalence.
//!
//! The paper's central claim is that revocable monitors are
//! *transparent*: for data-race-free, deadlock-free programs, running
//! under the modified VM (revocation) must produce the same committed
//! shared state as running under standard blocking monitors — rollbacks
//! may reorder and re-execute work, but they must never change what the
//! program ultimately computes.
//!
//! [`check_cross_policy`] tests exactly that. It runs the same program
//! and decision scripts under [`InversionPolicy::Revocation`] and
//! [`InversionPolicy::Blocking`] and compares the final static slots and
//! emitted output. Because the two policies reach different choice
//! points, the shared script acts as a *schedule perturbation*, not a
//! bit-identical schedule — which is the point: equivalence must hold
//! for every schedule of either VM.
//!
//! Only apply this to DRF, deadlock-free programs. A deadlocking program
//! legitimately diverges (revocation breaks the deadlock; blocking
//! stalls), and a racy program's final state is schedule-dependent under
//! *both* policies.

use crate::invariants::Violation;
use crate::runner::{Runner, Terminal};
use revmon_core::InversionPolicy;
use revmon_vm::bytecode::Program;
use revmon_vm::value::Value;
use revmon_vm::VmConfig;

/// Result of a cross-policy comparison.
#[derive(Clone, Debug, Default)]
pub struct EquivReport {
    /// Schedule scripts compared (including the implicit empty script).
    pub schedules: u64,
    /// Detected divergences, as `cross-policy-equivalence` violations.
    pub violations: Vec<Violation>,
}

impl EquivReport {
    /// Whether every compared schedule agreed across policies.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Output compared as a multiset: emits from different threads may
/// legitimately interleave differently across policies.
fn sorted_debug(values: &[Value]) -> Vec<String> {
    let mut v: Vec<String> = values.iter().map(|x| format!("{x:?}")).collect();
    v.sort();
    v
}

/// Compare `program` under revocation vs blocking across the empty
/// script plus each script in `schedules`.
pub fn check_cross_policy(
    program: &Program,
    entry: &str,
    base: VmConfig,
    schedules: &[Vec<u32>],
) -> Result<EquivReport, String> {
    let mut rev_cfg = base;
    rev_cfg.policy = InversionPolicy::Revocation;
    let mut blk_cfg = base;
    blk_cfg.policy = InversionPolicy::Blocking;
    let rev = Runner::new(program.clone(), entry, rev_cfg)?;
    let blk = Runner::new(program.clone(), entry, blk_cfg)?;

    let empty: Vec<u32> = Vec::new();
    let mut report = EquivReport::default();
    for script in std::iter::once(&empty).chain(schedules.iter()) {
        report.schedules += 1;
        let a = rev.run(script);
        let b = blk.run(script);
        if a.terminal != Terminal::Completed || b.terminal != Terminal::Completed {
            if a.terminal != b.terminal {
                report.violations.push(Violation {
                    invariant: "cross-policy-equivalence",
                    detail: format!(
                        "script {script:?}: terminal diverged (revocation: {:?}, blocking: {:?})",
                        a.terminal, b.terminal
                    ),
                });
            }
            continue;
        }
        if a.statics != b.statics {
            report.violations.push(Violation {
                invariant: "cross-policy-equivalence",
                detail: format!(
                    "script {script:?}: final statics diverged (revocation: {:?}, blocking: {:?})",
                    a.statics, b.statics
                ),
            });
        }
        if sorted_debug(&a.output) != sorted_debug(&b.output) {
            report.violations.push(Violation {
                invariant: "cross-policy-equivalence",
                detail: format!(
                    "script {script:?}: output diverged (revocation: {:?}, blocking: {:?})",
                    a.output, b.output
                ),
            });
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testprogs;

    #[test]
    fn counter_commits_the_same_total_under_both_policies() {
        let runner = testprogs::two_incrementers(2);
        let scripts = vec![vec![1], vec![1, 1], vec![0, 1, 0, 1]];
        let report = check_cross_policy(runner.program(), "main", *runner.config(), &scripts)
            .expect("valid program");
        assert_eq!(report.schedules, 4);
        assert!(report.clean(), "violations: {:?}", report.violations);
    }

    #[test]
    fn inversion_miniature_is_policy_transparent() {
        let runner = testprogs::inversion_pair();
        let scripts = vec![vec![1], vec![1, 0, 1]];
        let report = check_cross_policy(runner.program(), "main", *runner.config(), &scripts)
            .expect("valid program");
        assert!(report.clean(), "violations: {:?}", report.violations);
    }

    #[test]
    fn unknown_entry_is_an_error() {
        let runner = testprogs::inversion_pair();
        assert!(check_cross_policy(runner.program(), "nope", *runner.config(), &[]).is_err());
    }
}
