//! Small concurrent programs sized for *exhaustive* exploration.
//!
//! The corpus programs under `programs/` spin for tens of thousands of
//! iterations — right for benchmarking, hopeless for exhaustive schedule
//! enumeration. The builders here produce semantically equivalent
//! miniatures (two or three threads, a handful of iterations) and pair
//! them with a cost model whose quantum is one tick, so *every* yield
//! point with more than one runnable thread becomes a decision point.

use crate::runner::Runner;
use revmon_core::{CostModel, GovernorConfig};
use revmon_vm::builder::{MethodBuilder, ProgramBuilder};
use revmon_vm::bytecode::{NativeOp, Program};
use revmon_vm::VmConfig;

/// The modified-VM configuration exploration uses by default: revocation
/// enabled, all mechanism costs zeroed, and a one-tick quantum so the
/// scheduler is consulted at every yield point.
pub fn explore_config() -> VmConfig {
    let mut cfg = VmConfig::modified();
    cfg.cost = CostModel { quantum: 1, ..CostModel::free_mechanism() };
    cfg
}

/// Main method that allocates one lock object, spawns `n` copies of
/// `worker(lock)` at the given priorities, and joins them all.
fn spawn_and_join(
    pb: &mut ProgramBuilder,
    worker: revmon_vm::bytecode::MethodId,
    priorities: &[i64],
) {
    let main = pb.declare_method("main", 0);
    let n = priorities.len() as u16;
    let mut b = MethodBuilder::new(0, 1 + n);
    b.new_object(0, 0);
    b.store(0);
    for (i, &prio) in priorities.iter().enumerate() {
        b.load(0);
        b.const_i(prio);
        b.spawn(worker);
        b.store(1 + i as u16);
    }
    for i in 0..n {
        b.load(1 + i);
        b.join();
    }
    b.ret_void();
    pb.implement(main, b);
}

/// Two equal-priority threads each incrementing a shared static `iters`
/// times inside a synchronized block — the canonical data-race-free
/// counter. Every schedule must end with `s0 == 2 * iters`.
pub fn two_incrementers(iters: i64) -> Runner {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let worker = pb.declare_method("worker", 1);
    let mut b = MethodBuilder::new(1, 2);
    b.repeat(1, iters, |b| {
        b.sync_on_local(0, |b| {
            b.add_static(0, 1);
        });
    });
    b.ret_void();
    pb.implement(worker, b);
    spawn_and_join(&mut pb, worker, &[5, 5]);
    Runner::new(pb.finish(), "main", explore_config()).expect("valid program")
}

/// A low-priority thread updates two statics inside a long section while
/// a high-priority thread contends for the same lock — the Figure 1
/// inversion miniature. Under the modified VM the high thread's arrival
/// revokes the low holder; every schedule still ends with both updates
/// committed exactly once per thread.
pub fn inversion_pair() -> Runner {
    let mut pb = ProgramBuilder::new();
    pb.statics(2);
    let worker = pb.declare_method("worker", 1);
    let mut b = MethodBuilder::new(1, 1);
    b.sync_on_local(0, |b| {
        b.add_static(0, 1);
        b.add_static(1, 10);
        b.const_i(6);
        b.work();
    });
    b.ret_void();
    pb.implement(worker, b);
    spawn_and_join(&mut pb, worker, &[2, 8]);
    Runner::new(pb.finish(), "main", explore_config()).expect("valid program")
}

/// [`inversion_pair`] with the test-only rollback fault injected: each
/// rollback silently skips restoring its newest `skip` undo entries.
/// Exploration must catch this as a `rollback-restoration` violation.
pub fn faulty_inversion_pair(skip: u32) -> Runner {
    let mut pb = ProgramBuilder::new();
    pb.statics(2);
    let worker = pb.declare_method("worker", 1);
    let mut b = MethodBuilder::new(1, 1);
    b.sync_on_local(0, |b| {
        b.add_static(0, 1);
        b.add_static(1, 10);
        b.const_i(6);
        b.work();
    });
    b.ret_void();
    pb.implement(worker, b);
    spawn_and_join(&mut pb, worker, &[2, 8]);
    let mut cfg = explore_config();
    cfg.fault_skip_undo = skip;
    Runner::new(pb.finish(), "main", cfg).expect("valid program")
}

/// Pathological repeat-revocation miniature: two equal-priority threads
/// each run a short synchronized section, and the test-only
/// `fault_force_inversion` flag makes the VM treat *every* contended
/// acquire as a priority inversion — so each contender revokes the
/// holder and the pair can ping-pong rollbacks forever. Ungoverned
/// (`GovernorConfig::disabled()`), the fair schedule livelocks (the
/// runner's round budget catches it). With a retry budget `k`, every
/// schedule completes, the `bounded-revocation` invariant holds at
/// every state, and both increments commit exactly once per thread.
pub fn forced_repeat_revocation(governor: GovernorConfig) -> Runner {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let worker = pb.declare_method("worker", 1);
    let mut b = MethodBuilder::new(1, 1);
    b.sync_on_local(0, |b| {
        b.add_static(0, 1);
        b.const_i(4);
        b.work();
    });
    b.ret_void();
    pb.implement(worker, b);
    spawn_and_join(&mut pb, worker, &[5, 5]);
    let mut cfg = explore_config();
    cfg.fault_force_inversion = true;
    cfg.governor = governor;
    Runner::new(pb.finish(), "main", cfg).expect("valid program")
}

/// Two philosophers taking two locks in opposite orders — the deadlock
/// miniature. The modified VM must detect and break every deadlock these
/// schedules can form; both meals complete in every schedule.
pub fn deadlock_pair() -> Runner {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let dine = pb.declare_method("dine", 2);
    let mut b = MethodBuilder::new(2, 2);
    b.sync_on_local(0, |b| {
        b.const_i(3);
        b.work();
        b.sync_on_local(1, |b| {
            b.add_static(0, 1);
        });
    });
    b.ret_void();
    pb.implement(dine, b);

    let main = pb.declare_method("main", 0);
    let mut b = MethodBuilder::new(0, 4);
    b.new_object(0, 0);
    b.store(0);
    b.new_object(0, 0);
    b.store(1);
    b.load(0);
    b.load(1);
    b.const_i(5);
    b.spawn(dine);
    b.store(2);
    b.load(1);
    b.load(0);
    b.const_i(5);
    b.spawn(dine);
    b.store(3);
    b.load(2);
    b.join();
    b.load(3);
    b.join();
    b.get_static(0);
    b.native(NativeOp::Emit);
    b.ret_void();
    pb.implement(main, b);
    Runner::new(pb.finish(), "main", explore_config()).expect("valid program")
}

/// Assemble a `.rvm` corpus program from source text into a [`Program`].
pub fn assemble_corpus(src: &str) -> Result<Program, String> {
    revmon_vm::assemble(src).map_err(|e| e.to_string())
}
