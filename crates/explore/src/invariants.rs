//! The invariant catalog and the rollback oracle.
//!
//! Two layers of checking run during exploration:
//!
//! * **State invariants** ([`check_state`] / [`check_terminal`]) inspect
//!   the VM between scheduling rounds: monitor-header legality,
//!   prioritized entry-queue well-formedness, priority-boost sanity, and
//!   — at terminal states — that every undo log has been drained and no
//!   speculative write survives.
//! * **The [`Oracle`]** rides along as an execution [`Probe`], mirroring
//!   the write barrier: it snapshots the first-overwritten value of every
//!   location logged under each active section and, when a rollback
//!   completes, verifies the heap actually reads those pre-section values
//!   again (the paper's §3.1.2 claim that the undo log restores *"the
//!   (old) value itself"*). It also mirrors the speculative-write map to
//!   prove the JMM guard's soundness end to end: a value observed by
//!   another thread must never be rolled back (§2.2, Figs. 2–3).
//!
//! Every violated check becomes a [`Violation`] with a stable name, so
//! schedule artifacts can assert "this schedule reproduces *that* bug".

use revmon_core::ThreadId;
use revmon_vm::heap::Location;
use revmon_vm::thread::ThreadState;
use revmon_vm::value::{ObjRef, Value};
use revmon_vm::{Probe, Vm};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A broken invariant, with a stable machine-readable name and a
/// human-readable account of what was observed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Stable invariant name (e.g. `rollback-restoration`).
    pub invariant: &'static str,
    /// What exactly went wrong.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.invariant, self.detail)
    }
}

/// Invariants checkable on any reachable state (between rounds).
pub fn check_state(vm: &Vm) -> Vec<Violation> {
    let mut v = Vec::new();
    let threads = vm.vm_threads();

    // Bounded revocation (no livelock by repeat-revocation): under an
    // enabled governor with retry budget `k`, no `(monitor, holder)`
    // pair's consecutive-revocation streak may ever exceed `k` — the
    // consult that would start revocation `k + 1` must have answered
    // `Fallback`, sending the contender to the prioritized entry queue.
    let gov = vm.config().governor;
    if gov.enabled() {
        let streak = vm.governor().max_streak();
        if streak > gov.k {
            v.push(Violation {
                invariant: "bounded-revocation",
                detail: format!(
                    "revocation streak {streak} exceeds the governor budget k={}",
                    gov.k
                ),
            });
        }
    }

    for (obj, m) in vm.monitor_table().iter() {
        // Monitor-header state machine: owner and recursion move together.
        match m.owner {
            None => {
                if m.recursion != 0 {
                    v.push(Violation {
                        invariant: "monitor-header",
                        detail: format!("{obj}: unowned but recursion={}", m.recursion),
                    });
                }
            }
            Some(owner) => {
                if m.recursion == 0 {
                    v.push(Violation {
                        invariant: "monitor-header",
                        detail: format!("{obj}: owned by {owner:?} with recursion=0"),
                    });
                }
                let t = &threads[owner.index()];
                if !t.held.contains(obj) {
                    v.push(Violation {
                        invariant: "monitor-header",
                        detail: format!("{obj}: owner {owner:?} does not list it as held"),
                    });
                }
                if matches!(t.state, ThreadState::BlockedEnter(b) if b == *obj) {
                    v.push(Violation {
                        invariant: "monitor-header",
                        detail: format!("{obj}: owner {owner:?} is blocked entering it"),
                    });
                }
            }
        }

        // Entry-queue well-formedness: internal order intact, no queued
        // owner, every queued thread really is suspended on this monitor.
        if !m.queue.is_well_formed() {
            v.push(Violation {
                invariant: "entry-queue",
                detail: format!("{obj}: arrival sequence numbers out of order"),
            });
        }
        for (&tid, _prio) in m.queue.iter_entries() {
            if m.owner == Some(tid) {
                v.push(Violation {
                    invariant: "entry-queue",
                    detail: format!("{obj}: owner {tid:?} is also queued"),
                });
            }
            let ok = matches!(
                threads[tid.index()].state,
                ThreadState::BlockedEnter(b) | ThreadState::BlockedReacquire(b) if b == *obj
            );
            if !ok {
                v.push(Violation {
                    invariant: "entry-queue",
                    detail: format!(
                        "{obj}: queued thread {tid:?} is in state {:?}",
                        threads[tid.index()].state
                    ),
                });
            }
        }
        for &tid in &m.wait_set {
            if !matches!(threads[tid.index()].state, ThreadState::Waiting(w) if w == *obj) {
                v.push(Violation {
                    invariant: "wait-set",
                    detail: format!(
                        "{obj}: wait-set thread {tid:?} is in state {:?}",
                        threads[tid.index()].state
                    ),
                });
            }
        }
    }

    for t in threads {
        // Priority boosts only ever raise a thread above its base.
        if t.effective_priority < t.base_priority {
            v.push(Violation {
                invariant: "priority-boost",
                detail: format!(
                    "{:?}: effective {:?} below base {:?}",
                    t.id, t.effective_priority, t.base_priority
                ),
            });
        }
        // Every held monitor agrees it is held.
        for &obj in &t.held {
            if vm.monitor_table().get(obj).map(|m| m.owner) != Some(Some(t.id)) {
                v.push(Violation {
                    invariant: "monitor-header",
                    detail: format!("{:?} lists {obj} as held but is not its owner", t.id),
                });
            }
        }
        // Sections and undo logs exist only while the thread is alive.
        if t.is_terminated() && (!t.sections.is_empty() || !t.undo.is_empty()) {
            v.push(Violation {
                invariant: "undo-drained",
                detail: format!(
                    "{:?} terminated with {} live sections, {} undo entries",
                    t.id,
                    t.sections.len(),
                    t.undo.len()
                ),
            });
        }
    }
    v
}

/// Invariants that must hold once every thread has terminated: all
/// shared-state speculation fully resolved.
pub fn check_terminal(vm: &Vm) -> Vec<Violation> {
    let mut v = check_state(vm);
    for t in vm.vm_threads() {
        if !t.is_terminated() {
            return v; // not a terminal state; only the general checks apply
        }
    }
    if !vm.jmm_guard().is_empty() {
        v.push(Violation {
            invariant: "jmm-drained",
            detail: format!(
                "{} speculative writes live after all threads terminated: {:?}",
                vm.jmm_guard().len(),
                vm.jmm_guard().entries()
            ),
        });
    }
    for (obj, m) in vm.monitor_table().iter() {
        if m.owner.is_some() || !m.queue.is_empty() || !m.wait_set.is_empty() {
            v.push(Violation {
                invariant: "monitor-drained",
                detail: format!(
                    "{obj}: owner {:?}, {} queued, {} waiting at termination",
                    m.owner,
                    m.queue.len(),
                    m.wait_set.len()
                ),
            });
        }
    }
    v
}

/// One mirrored section layer: the undo-log length at entry and the
/// first-overwritten (pre-section) value of every location logged while
/// it was the innermost *recorded* layer.
#[derive(Debug)]
struct Layer {
    mark_len: usize,
    expected: HashMap<Location, Value>,
}

/// Shared oracle state, read by the runner after the VM run finishes.
#[derive(Debug, Default)]
pub struct OracleState {
    /// Violations detected by the probe hooks.
    pub violations: Vec<Violation>,
    /// Rollbacks the oracle verified.
    pub rollbacks_checked: u64,
    /// Commits observed.
    pub commits: u64,
    /// Per-thread mirror of active section layers.
    layers: HashMap<ThreadId, Vec<Layer>>,
    /// Mirror of the speculative-write map: location → (writer, value),
    /// plus whether a *different* thread has observed the value.
    speculative: HashMap<Location, (ThreadId, Value, bool)>,
}

/// The execution probe that mirrors the write barrier and verifies
/// rollbacks. Construct with [`Oracle::new`]; hand the probe to
/// [`Vm::attach_probe`] and keep the state handle.
#[derive(Debug)]
pub struct Oracle {
    state: Arc<Mutex<OracleState>>,
}

impl Oracle {
    /// A fresh oracle and its shared state handle.
    pub fn new() -> (Self, Arc<Mutex<OracleState>>) {
        let state = Arc::new(Mutex::new(OracleState::default()));
        (Oracle { state: state.clone() }, state)
    }
}

impl Probe for Oracle {
    fn on_section_enter(&mut self, vm: &Vm, tid: ThreadId, _monitor: ObjRef) {
        let mut st = self.state.lock().expect("oracle state");
        let mark_len = vm.vm_threads()[tid.index()].undo.len();
        st.layers.entry(tid).or_default().push(Layer { mark_len, expected: HashMap::new() });
    }

    fn on_heap_write(
        &mut self,
        _vm: &Vm,
        tid: ThreadId,
        loc: Location,
        old: Value,
        new: Value,
        logged: bool,
    ) {
        if !logged {
            // Unlogged writes happen only outside synchronized sections,
            // where the writer cannot have live speculative entries.
            return;
        }
        let mut st = self.state.lock().expect("oracle state");
        let st = &mut *st;
        if let Some(top) = st.layers.get_mut(&tid).and_then(|layers| layers.last_mut()) {
            top.expected.entry(loc).or_insert(old);
        }
        st.speculative.insert(loc, (tid, new, false));
    }

    fn on_heap_read(&mut self, _vm: &Vm, tid: ThreadId, loc: Location, value: Value) {
        let mut st = self.state.lock().expect("oracle state");
        if let Some(entry) = st.speculative.get_mut(&loc) {
            if entry.0 != tid && entry.1 == value {
                entry.2 = true; // a foreign thread observed the speculation
            }
        }
    }

    fn on_commit(&mut self, vm: &Vm, tid: ThreadId, _monitor: ObjRef) {
        let mut st = self.state.lock().expect("oracle state");
        st.commits += 1;
        st.layers.remove(&tid);
        st.speculative.retain(|_, &mut (w, _, _)| w != tid);
        // The VM retired the whole log at outermost exit; double-check.
        if !vm.vm_threads()[tid.index()].undo.is_empty() {
            st.violations.push(Violation {
                invariant: "undo-drained",
                detail: format!("{tid:?}: undo log not empty after outermost commit"),
            });
        }
    }

    fn on_rollback(&mut self, vm: &Vm, tid: ThreadId, monitor: ObjRef, _entries: u64) {
        let mut st = self.state.lock().expect("oracle state");
        let st = &mut *st;
        st.rollbacks_checked += 1;
        // Everything past the post-rollback log length was undone.
        let restored_to = vm.vm_threads()[tid.index()].undo.len();
        let layers = st.layers.remove(&tid).unwrap_or_default();
        let (kept, undone): (Vec<Layer>, Vec<Layer>) =
            layers.into_iter().partition(|l| l.mark_len < restored_to);

        // Merge expectations outermost-first: the value a location must
        // read after rollback is the *oldest* logged pre-value.
        let mut expected: HashMap<Location, Value> = HashMap::new();
        for layer in &undone {
            for (&loc, &old) in &layer.expected {
                expected.entry(loc).or_insert(old);
            }
        }
        for (loc, want) in &expected {
            match vm.heap().read(*loc) {
                Ok(got) if got == *want => {}
                Ok(got) => st.violations.push(Violation {
                    invariant: "rollback-restoration",
                    detail: format!(
                        "{tid:?} rolled back {monitor}: {loc:?} reads {got}, expected pre-section value {want}"
                    ),
                }),
                Err(e) => st.violations.push(Violation {
                    invariant: "rollback-restoration",
                    detail: format!("{tid:?} rolled back {monitor}: {loc:?} unreadable: {e}"),
                }),
            }
        }

        // JMM soundness: none of the undone writes may have been observed
        // by another thread while speculative.
        for (loc, &(w, val, seen)) in st.speculative.iter() {
            if w == tid && seen && expected.contains_key(loc) {
                st.violations.push(Violation {
                    invariant: "jmm-observed-write-revoked",
                    detail: format!(
                        "{tid:?} rolled back {monitor}: speculative value {val} at {loc:?} had been observed by another thread"
                    ),
                });
            }
        }
        st.speculative.retain(|loc, &mut (w, _, _)| !(w == tid && expected.contains_key(loc)));

        // The surviving (post-wait restart) section, if any, starts a
        // fresh expectation layer at the restored log length.
        let mut layers = kept;
        let live_sections = vm.vm_threads()[tid.index()].sections.len();
        while layers.len() < live_sections {
            layers.push(Layer { mark_len: restored_to, expected: HashMap::new() });
        }
        if !layers.is_empty() {
            st.layers.insert(tid, layers);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revmon_core::Priority;
    use revmon_vm::builder::{MethodBuilder, ProgramBuilder};
    use revmon_vm::VmConfig;

    fn run_with_oracle(fault_skip: u32) -> (Arc<Mutex<OracleState>>, Vm) {
        // A low thread holds the lock through long work; a high thread
        // arrives and revokes it. The section bumps two statics so a
        // skipped restore is observable.
        let mut pb = ProgramBuilder::new();
        pb.statics(2);
        let worker = pb.declare_method("worker", 1);
        let mut b = MethodBuilder::new(1, 1);
        b.sync_on_local(0, |b| {
            b.get_static(0);
            b.const_i(1);
            b.add();
            b.put_static(0);
            b.get_static(1);
            b.const_i(10);
            b.add();
            b.put_static(1);
            b.const_i(60_000);
            b.work();
        });
        b.ret_void();
        pb.implement(worker, b);
        let program = pb.finish();

        let mut cfg = VmConfig::modified();
        cfg.fault_skip_undo = fault_skip;
        let mut vm = Vm::new(program, cfg);
        let lock = vm.heap_mut().alloc(0, 0);
        vm.spawn("low", worker, vec![Value::Ref(lock)], Priority::LOW);
        vm.spawn("high", worker, vec![Value::Ref(lock)], Priority::HIGH);
        let (oracle, state) = Oracle::new();
        vm.attach_probe(Box::new(oracle));
        vm.run().expect("run completes");
        (state, vm)
    }

    #[test]
    fn correct_rollback_passes_the_oracle() {
        let (state, vm) = run_with_oracle(0);
        let st = state.lock().unwrap();
        assert!(st.rollbacks_checked > 0, "scenario must actually revoke");
        assert!(st.violations.is_empty(), "violations: {:?}", st.violations);
        assert!(check_terminal(&vm).is_empty());
    }

    #[test]
    fn injected_rollback_fault_is_caught() {
        let (state, _vm) = run_with_oracle(1);
        let st = state.lock().unwrap();
        assert!(
            st.violations.iter().any(|v| v.invariant == "rollback-restoration"),
            "fault not caught: {:?}",
            st.violations
        );
    }

    #[test]
    fn clean_vm_state_has_no_violations() {
        let mut pb = ProgramBuilder::new();
        pb.statics(1);
        let main = pb.declare_method("main", 0);
        let mut b = MethodBuilder::new(0, 0);
        b.const_i(1);
        b.put_static(0);
        b.ret_void();
        pb.implement(main, b);
        let mut vm = Vm::new(pb.finish(), VmConfig::modified());
        vm.spawn("main", main, vec![], Priority::NORM);
        assert!(check_state(&vm).is_empty());
        vm.run().unwrap();
        assert!(check_terminal(&vm).is_empty());
    }
}
