//! Seeded random schedule fuzzing.
//!
//! Where exhaustive exploration proves properties of *small* programs,
//! the fuzzer samples the schedule space of *large* ones: each iteration
//! draws a random decision script, runs it through the same
//! invariant-checked runner, and keeps the first failing schedule. Runs
//! are deterministic functions of the seed, so `FuzzReport::failure`
//! always replays.

use crate::runner::{Runner, Terminal};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Fuzzing limits and shape.
#[derive(Clone, Copy, Debug)]
pub struct FuzzPlan {
    /// Iterations to run.
    pub iters: u64,
    /// RNG seed; equal seeds produce equal campaigns.
    pub seed: u64,
    /// Length of each random decision script.
    pub script_len: usize,
    /// Exclusive upper bound on drawn decision indices. Values landing
    /// out of a choice point's range fall back to the default choice, so
    /// a bound a little above the expected thread count biases toward
    /// meaningful switches without starving any candidate.
    pub max_choice: u32,
}

impl Default for FuzzPlan {
    fn default() -> Self {
        FuzzPlan { iters: 100, seed: 0xf022, script_len: 64, max_choice: 4 }
    }
}

/// Outcome of a fuzzing campaign.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Iterations executed.
    pub iters: u64,
    /// Schedules that completed normally.
    pub completed: u64,
    /// Schedules that stalled.
    pub stalls: u64,
    /// Total rollbacks verified across the campaign.
    pub rollbacks: u64,
    /// First failing schedule (full decision sequence) and the violated
    /// invariant's name.
    pub failure: Option<(Vec<u32>, String)>,
}

/// Run a fuzzing campaign over `runner`'s program. Stops early at the
/// first invariant violation.
pub fn fuzz(runner: &Runner, plan: FuzzPlan) -> FuzzReport {
    let mut rng = SmallRng::seed_from_u64(plan.seed);
    let mut report = FuzzReport::default();
    for _ in 0..plan.iters {
        let script: Vec<u32> =
            (0..plan.script_len).map(|_| rng.gen_range(0..plan.max_choice.max(1))).collect();
        let out = runner.run(&script);
        report.iters += 1;
        report.rollbacks += out.rollbacks;
        match out.terminal {
            Terminal::Completed => report.completed += 1,
            Terminal::Stalled => report.stalls += 1,
            _ => {}
        }
        if let Some(v) = out.violations.first() {
            report.failure = Some((out.choices(), v.invariant.to_string()));
            break;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testprogs;

    #[test]
    fn fuzzing_a_correct_program_finds_nothing() {
        let report =
            fuzz(&testprogs::inversion_pair(), FuzzPlan { iters: 40, ..Default::default() });
        assert_eq!(report.iters, 40);
        assert!(report.failure.is_none());
        assert!(report.completed > 0);
    }

    #[test]
    fn fuzzing_is_deterministic_in_the_seed() {
        let runner = testprogs::two_incrementers(2);
        let plan = FuzzPlan { iters: 10, seed: 7, ..Default::default() };
        let a = fuzz(&runner, plan);
        let b = fuzz(&runner, plan);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.rollbacks, b.rollbacks);
    }

    #[test]
    fn fuzzing_catches_the_injected_fault() {
        let runner = testprogs::faulty_inversion_pair(1);
        let report = fuzz(&runner, FuzzPlan { iters: 200, ..Default::default() });
        let (schedule, invariant) = report.failure.expect("fault must surface");
        assert_eq!(invariant, "rollback-restoration");
        assert!(runner.run(&schedule).violates("rollback-restoration"), "must replay");
    }
}
