//! Facade crate re-exporting the revmon workspace.
pub use revmon_core as core;
pub use revmon_locks as locks;
pub use revmon_obs as obs;
pub use revmon_vm as vm;
